// The distributed campaign layer's process-free contracts:
//   1. the lease wire codec is strict — a desynchronised pipe must parse
//      to nullopt, never to a plausible-but-wrong message;
//   2. LeaseBook (partition, work-stealing, death reissue, duplicate-ack
//      dedupe) is a pure state machine whose decisions depend only on the
//      event sequence;
//   3. pending_ranges turns any journal scan into the exact work pool a
//      coordinator (re)starts from;
//   4. degraded journals — header-only shards, a worker's shard missing
//      entirely, duplicated trials across shards, a coordinator killed
//      mid-campaign — merge into reports byte-identical to an
//      uninterrupted single-process run;
//   5. ProgressMerger folds interleaved multi-process progress streams
//      without tearing lines split across reads.
#include <gtest/gtest.h>

#include <filesystem>
#include <string>
#include <vector>

#include "campaign/dist/lease.h"
#include "campaign/progress_merge.h"
#include "campaign/runner.h"
#include "campaign/store/journal.h"
#include "campaign/store/journal_reader.h"
#include "campaign/store/shard_writer.h"
#include "campaign/trial.h"
#include "common/rng.h"
#include "common/stats.h"

namespace dnstime::campaign {
namespace {

namespace fs = std::filesystem;
using dist::Lease;
using dist::LeaseBook;
using dist::Msg;
using store::TrialRange;

struct TempJournalDir {
  explicit TempJournalDir(const std::string& tag)
      : path((fs::path(::testing::TempDir()) / ("dnstime_dist_" + tag))
                 .string()) {
    fs::remove_all(path);
    fs::create_directories(path);
  }
  ~TempJournalDir() {
    std::error_code ec;
    fs::remove_all(path, ec);
  }
  std::string path;
};

/// Same cheap deterministic scenario the journal tests use.
ScenarioSpec synthetic_scenario(std::string name) {
  ScenarioSpec spec;
  spec.name = std::move(name);
  spec.attack = AttackKind::kCustom;
  spec.trial_fn = [](const ScenarioSpec&, const TrialContext& ctx) {
    Rng rng{ctx.seed};
    TrialResult r;
    r.metric = rng.uniform01();
    r.duration_s = 60.0 + 540.0 * rng.uniform01();
    r.success = rng.chance(0.8);
    r.clock_shift_s = r.success ? -500.0 : 0.0;
    r.fragments_planted = rng.uniform(0, 30);
    return r;
  };
  return spec;
}

std::vector<ScenarioSpec> two_synthetic_scenarios() {
  std::vector<ScenarioSpec> scenarios;
  scenarios.push_back(synthetic_scenario("synthetic/a"));
  scenarios.push_back(synthetic_scenario("synthetic/b"));
  return scenarios;
}

store::JournalMeta meta_for(const CampaignConfig& config,
                            const std::vector<ScenarioSpec>& scenarios) {
  return store::JournalMeta::describe(config.seed, config.trials, scenarios);
}

/// Executes flattened trial `idx` exactly the way a dist worker does and
/// appends it to `writer` — the building block for simulating partial
/// campaigns without spawning processes.
void execute_into(store::ShardWriter& writer,
                  const std::vector<ScenarioSpec>& scenarios, u64 seed,
                  u32 trials, u64 idx) {
  const auto scenario_idx = static_cast<std::size_t>(idx / trials);
  const auto trial_idx = static_cast<u32>(idx % trials);
  const ScenarioSpec& spec = scenarios[scenario_idx];
  TrialContext ctx;
  ctx.campaign_seed = seed;
  ctx.trial = trial_idx;
  ctx.seed = CampaignRunner::trial_seed(seed, spec, trial_idx);
  writer.append(static_cast<u32>(scenario_idx), run_trial(spec, ctx));
}

// --- wire codec -------------------------------------------------------------

TEST(DistMsg, RoundTripsEveryKind) {
  Msg lease;
  lease.kind = Msg::Kind::Lease;
  lease.a = 10;
  lease.b = 250;
  lease.shard_id = 7;
  EXPECT_EQ(lease.encode(), "LEASE 10 250 7\n");

  Msg trim;
  trim.kind = Msg::Kind::Trim;
  trim.a = 130;
  EXPECT_EQ(trim.encode(), "TRIM 130\n");

  Msg fin;
  fin.kind = Msg::Kind::Fin;
  EXPECT_EQ(fin.encode(), "FIN\n");

  Msg done;
  done.kind = Msg::Kind::Done;
  done.a = 42;
  done.b = 1;
  EXPECT_EQ(done.encode(), "DONE 42 1\n");

  for (const Msg* m : {&lease, &trim, &fin, &done}) {
    std::string line = m->encode();
    line.pop_back();  // parse() takes the line without its '\n'
    const std::optional<Msg> parsed = Msg::parse(line);
    ASSERT_TRUE(parsed.has_value()) << line;
    EXPECT_EQ(parsed->kind, m->kind);
    EXPECT_EQ(parsed->a, m->a);
    EXPECT_EQ(parsed->b, m->b);
    EXPECT_EQ(parsed->shard_id, m->shard_id);
  }
}

TEST(DistMsg, RejectsEveryMalformation) {
  const char* bad[] = {
      "",                             // empty
      "NOPE 1",                       // unknown verb
      "lease 1 2 3",                  // verbs are case-sensitive
      "FIN 1",                        // FIN takes no fields
      "TRIM",                         // missing field
      "TRIM ",                        // empty field
      "TRIM 12x",                     // junk inside a field
      "TRIM 12 ",                     // trailing separator
      "LEASE 1 2",                    // missing shard id
      "LEASE 1 2 3 4",                // trailing field
      "LEASE 1 2 4294967296",         // shard id overflows u32
      "LEASE -1 2 3",                 // signs are not digits
      "DONE 5",                       // missing success flag
      "DONE 5 2",                     // success must be 0 or 1
      "DONE 18446744073709551616 0",  // u64 overflow
  };
  for (const char* line : bad) {
    EXPECT_FALSE(Msg::parse(line).has_value()) << "'" << line << "'";
  }
}

// --- pending_ranges ---------------------------------------------------------

TEST(PendingRanges, FreshJournalIsOneRangeCoveringEverything) {
  store::JournalScan scan;  // found == false
  const auto ranges = store::pending_ranges(scan, 3, 8);
  ASSERT_EQ(ranges.size(), 1u);
  EXPECT_EQ(ranges[0], (TrialRange{0, 24}));
}

TEST(PendingRanges, HolesBecomeMaximalAscendingRuns) {
  store::JournalScan scan;
  scan.found = true;
  // 2 scenarios x 4 trials; done: s0 = {t1, t2}, s1 = {t0}.
  scan.done = {{0, 1, 1, 0}, {1, 0, 0, 0}};
  const auto ranges = store::pending_ranges(scan, 2, 4);
  ASSERT_EQ(ranges.size(), 3u);
  EXPECT_EQ(ranges[0], (TrialRange{0, 1}));  // s0 t0
  EXPECT_EQ(ranges[1], (TrialRange{3, 4}));  // s0 t3
  EXPECT_EQ(ranges[2], (TrialRange{5, 8}));  // s1 t1..t3
}

TEST(PendingRanges, CompleteJournalYieldsNothing) {
  store::JournalScan scan;
  scan.found = true;
  scan.done = {{1, 1}, {1, 1}};
  EXPECT_TRUE(store::pending_ranges(scan, 2, 2).empty());
}

// --- LeaseBook --------------------------------------------------------------

TEST(LeaseBookTest, StartupStealCascadePartitionsTheRange) {
  // A fresh campaign's pool is one range; worker 0 takes it whole and the
  // others carve it up by stealing half the largest remainder each.
  LeaseBook book({{0, 16}}, 16, 4, /*first_shard_id=*/5);
  const auto a0 = book.next_assignment(0);
  ASSERT_TRUE(a0);
  EXPECT_EQ(a0->lease, (Lease{0, 16, 5}));
  EXPECT_FALSE(a0->stolen);

  const auto a1 = book.next_assignment(1);
  ASSERT_TRUE(a1);
  EXPECT_TRUE(a1->stolen);
  EXPECT_EQ(a1->victim, 0u);
  EXPECT_EQ(a1->victim_new_end, 8u);
  EXPECT_EQ(a1->lease, (Lease{8, 16, 6}));
  EXPECT_EQ(book.active_lease(0).end, 8u);  // the TRIM the book decided on

  const auto a2 = book.next_assignment(2);
  ASSERT_TRUE(a2);
  EXPECT_EQ(a2->lease, (Lease{4, 8, 7}));  // stole from worker 0 again
  const auto a3 = book.next_assignment(3);
  ASSERT_TRUE(a3);
  EXPECT_EQ(a3->lease, (Lease{12, 16, 8}));  // worker 1 was then largest

  // Every trial is covered exactly once by the four active leases.
  std::vector<int> cover(16, 0);
  for (u32 w = 0; w < 4; ++w) {
    const Lease& l = book.active_lease(w);
    for (u64 i = l.begin; i < l.end; ++i) cover[i]++;
  }
  for (u64 i = 0; i < 16; ++i) EXPECT_EQ(cover[i], 1) << "index " << i;
  EXPECT_EQ(book.shard_ids_issued(), 9u);
}

TEST(LeaseBookTest, ResumePoolSkipsJournaledTrials) {
  LeaseBook book({{2, 4}, {6, 8}}, 8, 2, 0);
  EXPECT_EQ(book.target(), 4u);
  const auto a0 = book.next_assignment(0);
  const auto a1 = book.next_assignment(1);
  ASSERT_TRUE(a0 && a1);
  EXPECT_EQ(a0->lease, (Lease{2, 4, 0}));
  EXPECT_EQ(a1->lease, (Lease{6, 8, 1}));
}

TEST(LeaseBookTest, DuplicateAcksCountOnceAndCompletionFreesTheWorker) {
  LeaseBook book({{0, 3}}, 3, 1, 0);
  (void)book.next_assignment(0);
  book.mark_done(0, 0);
  book.mark_done(0, 0);  // reissued-overlap duplicate
  EXPECT_EQ(book.done_count(), 1u);
  EXPECT_TRUE(book.worker_busy(0));
  book.mark_done(0, 1);
  book.mark_done(0, 2);
  EXPECT_EQ(book.done_count(), 3u);
  EXPECT_TRUE(book.all_done());
  EXPECT_FALSE(book.worker_busy(0));
}

TEST(LeaseBookTest, DeadWorkerTailIsReissuedToTheNextIdleWorker) {
  LeaseBook book({{0, 8}}, 8, 2, 0);
  (void)book.next_assignment(0);
  book.mark_done(0, 0);
  book.mark_done(0, 1);
  book.worker_dead(0);  // acked [0,2); tail [2,8) must survive
  EXPECT_FALSE(book.worker_busy(0));

  const auto a1 = book.next_assignment(1);
  ASSERT_TRUE(a1);
  EXPECT_FALSE(a1->stolen);  // from the pool, not a steal
  EXPECT_EQ(a1->lease, (Lease{2, 8, 1}));
  for (u64 i = 2; i < 8; ++i) book.mark_done(1, i);
  EXPECT_EQ(book.done_count(), 8u);
  EXPECT_TRUE(book.all_done());
}

TEST(LeaseBookTest, SingleTrialRemaindersAreNeverStolen) {
  LeaseBook book({{0, 4}}, 4, 2, 0);
  (void)book.next_assignment(0);
  for (u64 i = 0; i < 3; ++i) book.mark_done(0, i);
  // Worker 0 has exactly one unacked trial; stealing it would only race.
  EXPECT_FALSE(book.next_assignment(1).has_value());  // parked
  book.mark_done(0, 3);
  EXPECT_TRUE(book.all_done());
}

TEST(LeaseBookTest, TrimRaceOverlapIsHarmless) {
  // Victim journals past the split before the TRIM lands: its stale DONEs
  // and the thief's re-executed copies both arrive; the done set counts
  // each trial once and the campaign still converges.
  LeaseBook book({{0, 8}}, 8, 2, 0);
  (void)book.next_assignment(0);
  const auto steal = book.next_assignment(1);
  ASSERT_TRUE(steal && steal->stolen);
  EXPECT_EQ(steal->victim_new_end, 4u);

  for (u64 i = 0; i < 6; ++i) book.mark_done(0, i);  // raced past the TRIM
  for (u64 i = 4; i < 8; ++i) book.mark_done(1, i);  // thief's full half
  EXPECT_EQ(book.done_count(), 8u);
  EXPECT_TRUE(book.all_done());
}

// --- degraded journal merges ------------------------------------------------

TEST(DistJournal, HeaderOnlyShardContributesNothingAndBreaksNothing) {
  TempJournalDir dir("headeronly");
  auto scenarios = two_synthetic_scenarios();
  const u32 trials = 4;
  store::JournalMeta meta = store::JournalMeta::describe(11, trials, scenarios);

  // A complete shard 0, plus shard 1 cut back to exactly its header — the
  // on-disk state of a worker killed after opening its shard but before
  // flushing any frame. Header size is recovered from two writers whose
  // record payloads are identical.
  {
    store::ShardWriter w(dir.path, meta, 0);
    for (u64 idx = 0; idx < 2 * trials; ++idx) {
      execute_into(w, scenarios, 11, trials, idx);
    }
    w.close();
  }
  u64 header_bytes = 0;
  {
    TrialResult fixed;
    fixed.trial = 0;
    store::ShardWriter one(dir.path, meta, 1);
    one.append(0, fixed);
    const u64 header_plus_frame = one.bytes_written();
    one.append(0, fixed);
    header_bytes = 2 * header_plus_frame - one.bytes_written();
    one.close();
  }
  fs::resize_file(dir.path + "/" + store::shard_filename(1), header_bytes);

  store::JournalScan scan = store::scan_journal(dir.path);
  EXPECT_TRUE(scan.found);
  EXPECT_EQ(scan.records, u64{2} * trials);  // shard 1 adds nothing
  EXPECT_TRUE(store::pending_ranges(scan, scenarios.size(), trials).empty());

  store::JournalMerge merge(dir.path);
  ASSERT_TRUE(merge.valid());
  store::JournalRecord rec;
  u64 n = 0;
  while (merge.next(rec)) n++;
  EXPECT_EQ(n, u64{2} * trials);
}

TEST(DistJournal, MissingWorkerShardResumesIntoIdenticalReport) {
  TempJournalDir dir("missing");
  auto scenarios = two_synthetic_scenarios();
  CampaignConfig config;
  config.seed = 77;
  config.trials = 6;
  config.threads = 1;
  const CampaignReport baseline = CampaignRunner(config).run(scenarios);

  // Workers 0 and 2 flushed their shards; worker 1 (leased [4, 8)) died
  // before writing anything — its shard simply does not exist.
  {
    store::ShardWriter w0(dir.path, meta_for(config, scenarios), 0);
    store::ShardWriter w2(dir.path, meta_for(config, scenarios), 2);
    for (u64 idx = 0; idx < 4; ++idx) {
      execute_into(w0, scenarios, config.seed, config.trials, idx);
    }
    for (u64 idx = 8; idx < 12; ++idx) {
      execute_into(w2, scenarios, config.seed, config.trials, idx);
    }
    w0.close();
    w2.close();
  }

  store::JournalScan scan = store::scan_journal(dir.path);
  const auto pending =
      store::pending_ranges(scan, scenarios.size(), config.trials);
  ASSERT_EQ(pending.size(), 1u);
  EXPECT_EQ(pending[0], (TrialRange{4, 8}));

  // The resumed coordinator leases exactly that hole to a fresh shard.
  {
    store::ShardWriter w(dir.path, meta_for(config, scenarios), 3);
    for (u64 idx = pending[0].begin; idx < pending[0].end; ++idx) {
      execute_into(w, scenarios, config.seed, config.trials, idx);
    }
    w.close();
  }
  EXPECT_EQ(store::read_report(dir.path).to_json(/*include_trials=*/false),
            baseline.to_json(/*include_trials=*/false));
}

TEST(DistJournal, DuplicateTrialsKeepExactlyTheFirstShardsCopy) {
  TempJournalDir dir("dupfirst");
  auto scenarios = two_synthetic_scenarios();
  store::JournalMeta meta = store::JournalMeta::describe(5, 4, scenarios);

  // Shards 0 and 1 both hold (scenario 0, trial 2) with distinguishable
  // payloads. Real duplicates are identical (trials are deterministic);
  // distinct payloads let the test observe WHICH copy survived.
  TrialResult from_shard0;
  from_shard0.trial = 2;
  from_shard0.metric = 0.25;
  TrialResult from_shard1 = from_shard0;
  from_shard1.metric = 0.75;
  {
    store::ShardWriter w0(dir.path, meta, 0);
    w0.append(0, from_shard0);
    w0.close();
    store::ShardWriter w1(dir.path, meta, 1);
    w1.append(0, from_shard1);
    w1.close();
  }

  store::JournalMerge merge(dir.path);
  store::JournalRecord rec;
  ASSERT_TRUE(merge.next(rec));
  EXPECT_EQ(rec.result.metric, 0.25);  // lexicographically first shard wins
  EXPECT_FALSE(merge.next(rec));       // and exactly one copy survives

  store::JournalScan scan = store::scan_journal(dir.path);
  EXPECT_EQ(scan.records, 1u);
}

TEST(DistJournal, CoordinatorCrashMidCampaignResumesToIdenticalReport) {
  TempJournalDir dir("crashresume");
  auto scenarios = two_synthetic_scenarios();
  CampaignConfig config;
  config.seed = 31;
  config.trials = 8;
  config.threads = 1;
  const CampaignReport baseline = CampaignRunner(config).run(scenarios);
  const u64 total = u64{scenarios.size()} * config.trials;

  // First coordinator: three workers were mid-lease when it died, each
  // shard a different prefix of its lease (whatever happened to be flushed
  // at the kill instant).
  const store::JournalMeta meta = meta_for(config, scenarios);
  const TrialRange leases[] = {{0, 6}, {6, 11}, {11, 16}};
  const u64 flushed[] = {4, 2, 5};
  for (u32 w = 0; w < 3; ++w) {
    store::ShardWriter writer(dir.path, meta, w);
    for (u64 idx = leases[w].begin; idx < leases[w].begin + flushed[w];
         ++idx) {
      execute_into(writer, scenarios, config.seed, config.trials, idx);
    }
    writer.close();
  }

  // Second coordinator: scan, lease out the holes, finish the campaign.
  store::JournalScan scan = store::scan_journal(dir.path);
  const auto pending =
      store::pending_ranges(scan, scenarios.size(), config.trials);
  ASSERT_EQ(pending.size(), 2u);  // [4,6), [8,11); worker 2 had finished
  EXPECT_EQ(pending[0], (TrialRange{4, 6}));
  EXPECT_EQ(pending[1], (TrialRange{8, 11}));
  u32 next_shard = 3;
  u64 re_executed = 0;
  for (const TrialRange& r : pending) {
    store::ShardWriter writer(dir.path, meta, next_shard++);
    for (u64 idx = r.begin; idx < r.end; ++idx) {
      execute_into(writer, scenarios, config.seed, config.trials, idx);
      re_executed++;
    }
    writer.close();
  }
  EXPECT_EQ(re_executed, total - (4 + 2 + 5));

  EXPECT_EQ(store::read_report(dir.path).to_json(/*include_trials=*/false),
            baseline.to_json(/*include_trials=*/false));
}

// --- ProgressMerger ---------------------------------------------------------

std::string progress_line(const char* scenario, u64 done, u64 trials,
                          u64 successes) {
  std::string line = "{\"scenario\":\"";
  line += scenario;
  line += "\",\"done\":";
  line += std::to_string(done);
  line += ",\"trials\":";
  line += std::to_string(trials);
  line += ",\"successes\":";
  line += std::to_string(successes);
  line += "}\n";
  return line;
}

TEST(ProgressMergerTest, SumsCountsAcrossFilesAndRecomputesTheInterval) {
  ProgressMerger m;
  const std::string a = progress_line("sweep/x", 3, 6, 2);
  const std::string b = progress_line("sweep/x", 3, 6, 1);
  m.feed(0, a.data(), a.size());
  m.feed(1, b.data(), b.size());

  const auto snap = m.snapshot();
  ASSERT_EQ(snap.rows.size(), 1u);
  const auto& row = snap.rows[0];
  EXPECT_EQ(row.name, "sweep/x");
  EXPECT_EQ(row.done, 6u);
  EXPECT_EQ(row.trials, 6u);
  EXPECT_EQ(row.successes, 3u);
  EXPECT_DOUBLE_EQ(row.rate, 0.5);
  const WilsonInterval ci = wilson_interval(3, 6);  // from the SUMS
  EXPECT_DOUBLE_EQ(row.wilson_low, ci.low);
  EXPECT_DOUBLE_EQ(row.wilson_high, ci.high);
}

TEST(ProgressMergerTest, InterleavedPartialLinesNeverTear) {
  // Two streams fed in fragments that both split lines mid-key, with the
  // fragments interleaved across streams — the tail-follow worst case.
  // The merged result must equal feeding each stream in one piece.
  const std::string s0 = progress_line("sweep/x", 1, 4, 1) +
                         progress_line("sweep/x", 2, 4, 1) +
                         progress_line("sweep/y", 1, 4, 0);
  const std::string s1 = progress_line("sweep/y", 1, 4, 1) +
                         progress_line("sweep/x", 1, 4, 0);

  ProgressMerger whole;
  whole.feed(0, s0.data(), s0.size());
  whole.feed(1, s1.data(), s1.size());

  ProgressMerger shredded;
  std::size_t p0 = 0, p1 = 0;
  // Prime-sized chunks guarantee splits inside keys, values and quotes.
  while (p0 < s0.size() || p1 < s1.size()) {
    if (p0 < s0.size()) {
      const std::size_t n = std::min<std::size_t>(7, s0.size() - p0);
      shredded.feed(0, s0.data() + p0, n);
      p0 += n;
    }
    if (p1 < s1.size()) {
      const std::size_t n = std::min<std::size_t>(11, s1.size() - p1);
      shredded.feed(1, s1.data() + p1, n);
      p1 += n;
    }
  }

  // Row order (first-seen across streams) legitimately depends on the
  // interleaving; the folded COUNTS must not. Compare by name.
  const auto a = whole.snapshot();
  const auto b = shredded.snapshot();
  const auto row = [](const ProgressMerger::Snapshot& snap,
                      const std::string& name) {
    for (const auto& r : snap.rows) {
      if (r.name == name) return r;
    }
    ADD_FAILURE() << "missing row " << name;
    return ProgressMerger::MergedRow{};
  };
  ASSERT_EQ(a.rows.size(), b.rows.size());
  for (const auto& ar : a.rows) {
    const auto br = row(b, ar.name);
    EXPECT_EQ(ar.done, br.done) << ar.name;
    EXPECT_EQ(ar.successes, br.successes) << ar.name;
  }
  EXPECT_EQ(a.lines, b.lines);
  EXPECT_EQ(b.bad_lines, 0u);
  // x: stream0 latest done=2/succ=1, stream1 done=1/succ=0 -> 3 done, 1 succ.
  EXPECT_EQ(row(b, "sweep/x").done, 3u);
  EXPECT_EQ(row(b, "sweep/x").successes, 1u);
}

TEST(ProgressMergerTest, CampaignFactsComeFromCoordinatorStyleLines) {
  ProgressMerger m;
  const std::string worker = progress_line("sweep/x", 2, 4, 2);
  const std::string coord =
      "{\"campaign_done\":5,\"campaign_total\":8,\"elapsed_s\":1.5,"
      "\"eta_s\":0.9}\n";
  m.feed(0, worker.data(), worker.size());
  m.feed(1, coord.data(), coord.size());
  const auto snap = m.snapshot();
  EXPECT_EQ(snap.campaign_done, 5u);
  EXPECT_EQ(snap.campaign_total, 8u);
  EXPECT_DOUBLE_EQ(snap.elapsed_s, 1.5);
  EXPECT_DOUBLE_EQ(snap.eta_s, 0.9);
  EXPECT_EQ(snap.bad_lines, 0u);  // neither line style is malformed
}

TEST(ProgressMergerTest, MalformedLinesAreCountedNotFolded) {
  ProgressMerger m;
  const std::string junk = "not json at all\n{\"half\":1}\n";
  m.feed(0, junk.data(), junk.size());
  const auto snap = m.snapshot();
  EXPECT_TRUE(snap.rows.empty());
  EXPECT_EQ(snap.lines, 2u);
  EXPECT_EQ(snap.bad_lines, 2u);
}

}  // namespace
}  // namespace dnstime::campaign
