// Golden-file lockdown of the CampaignReport writers: the JSON (full and
// aggregates-only) and table renderings of a fixed report are pinned
// byte-for-byte against checked-in fixtures, so any writer change shows
// up as a reviewable fixture diff instead of silent drift — these bytes
// are what committed baseline artifacts and the CI diff gate consume.
//
// To regenerate after an intentional writer change:
//   DNSTIME_UPDATE_GOLDEN=1 ./build/dnstime_campaign_tests \
//       --gtest_filter='Golden*'
// and commit the fixture diff.
#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <limits>
#include <sstream>
#include <string>

#include "campaign/diff/report_reader.h"
#include "campaign/report.h"

namespace dnstime::campaign {
namespace {

std::string golden_path(const std::string& name) {
  return std::string(DNSTIME_TEST_DATA_DIR) + "/golden/" + name;
}

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    ADD_FAILURE() << "cannot open golden fixture " << path
                  << " (run with DNSTIME_UPDATE_GOLDEN=1 to create it)";
    return {};
  }
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

void write_file(const std::string& path, const std::string& content) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  ASSERT_TRUE(out) << "cannot write golden fixture " << path;
  out << content;
}

bool update_mode() {
  const char* env = std::getenv("DNSTIME_UPDATE_GOLDEN");
  return env != nullptr && *env != '\0' && *env != '0';
}

/// The pinned report: hand-picked values that exercise every writer edge —
/// unicode and escaped scenario names, control characters and quotes in
/// error strings, NaN metrics (-> null), an all-failure scenario, an
/// empty scenario, and results both present and omitted. All finite
/// doubles are %.6g-stable so the JSON round-trips losslessly.
CampaignReport golden_report() {
  CampaignReport r;
  r.seed = 424242;
  r.trials_per_scenario = 4;

  ScenarioAggregate a;
  a.name = "table2/ntpd-p1";
  a.attack = "run-time";
  a.trials = 4;
  a.successes = 3;
  a.errors = 1;
  a.success_rate = 0.75;
  a.duration_mean_s = 1020.5;
  a.duration_p50_s = 990.25;
  a.duration_p90_s = 1180.75;
  a.shift_mean_s = -500.125;
  a.metric_mean = 0.625;
  a.fragments_total = 96;
  {
    TrialResult t;
    t.trial = 0;
    t.seed = 101;
    t.success = true;
    t.duration_s = 990.25;
    t.clock_shift_s = -500.125;
    t.metric = 1.0;
    t.fragments_planted = 32;
    t.replant_rounds = 2;
    a.results.push_back(t);
  }
  {
    TrialResult t;
    t.trial = 1;
    t.seed = 102;
    t.success = false;
    t.duration_s = 21600.0;
    t.clock_shift_s = 0.0;
    t.metric = 0.0;
    t.fragments_planted = 0;
    t.replant_rounds = 0;
    t.error = "crash\n\"quoted\" \\path \x01tail";
    a.results.push_back(t);
  }
  {
    TrialResult t;
    t.trial = 2;
    t.seed = 103;
    t.success = true;
    t.duration_s = 890.5;
    t.clock_shift_s = -500.125;
    t.metric = 0.5;
    t.fragments_planted = 28;
    t.replant_rounds = 1;
    a.results.push_back(t);
  }
  {
    TrialResult t;
    t.trial = 3;
    t.seed = 104;
    t.success = true;
    t.duration_s = 1180.75;
    t.clock_shift_s = -500.125;
    t.metric = std::numeric_limits<double>::quiet_NaN();
    t.fragments_planted = 36;
    t.replant_rounds = 3;
    a.results.push_back(t);
  }
  r.scenarios.push_back(std::move(a));

  ScenarioAggregate b;
  b.name = "sweep/\xce\xbc-mtu/\xe2\x98\x83";  // sweep/μ-mtu/☃
  b.attack = "boot-time";
  b.trials = 4;
  b.successes = 0;
  b.errors = 0;
  b.success_rate = 0.0;
  b.duration_mean_s = 0.0;
  b.duration_p50_s = 0.0;
  b.duration_p90_s = 0.0;
  b.shift_mean_s = 0.0;
  b.metric_mean = -0.25;
  b.fragments_total = 0;
  r.scenarios.push_back(std::move(b));

  ScenarioAggregate c;
  c.name = "edge/\"empty\"";
  c.attack = "custom";
  r.scenarios.push_back(std::move(c));

  return r;
}

void expect_matches_golden(const std::string& fixture,
                           const std::string& actual) {
  const std::string path = golden_path(fixture);
  if (update_mode()) write_file(path, actual);
  EXPECT_EQ(read_file(path), actual)
      << fixture << " drifted from the committed golden bytes; if the "
      << "writer change is intentional, regenerate with "
      << "DNSTIME_UPDATE_GOLDEN=1 and commit the fixture diff";
}

TEST(GoldenReport, FullJsonPinnedByteForByte) {
  expect_matches_golden("report_full.json",
                        golden_report().to_json(/*include_trials=*/true) +
                            "\n");
}

TEST(GoldenReport, AggregatesJsonPinnedByteForByte) {
  expect_matches_golden("report_aggregates.json",
                        golden_report().to_json(/*include_trials=*/false) +
                            "\n");
}

TEST(GoldenReport, TablePinnedByteForByte) {
  expect_matches_golden("report.table", golden_report().to_table());
}

TEST(GoldenReport, FixtureParsesBackToTheSameReport) {
  // The reader inverts the pinned bytes: golden fixture -> structs ->
  // identical bytes. This is the full-circle contract the diff tool's
  // baseline artifacts rely on.
  const std::string fixture = read_file(golden_path("report_full.json"));
  ASSERT_FALSE(fixture.empty());
  CampaignReport parsed =
      diff::parse_report(fixture, golden_path("report_full.json"));
  EXPECT_EQ(parsed.to_json(/*include_trials=*/true) + "\n", fixture);

  const std::string aggregates =
      read_file(golden_path("report_aggregates.json"));
  ASSERT_FALSE(aggregates.empty());
  CampaignReport parsed_aggregates = diff::parse_report(aggregates);
  EXPECT_EQ(parsed_aggregates.to_json(/*include_trials=*/false) + "\n",
            aggregates);
  EXPECT_TRUE(parsed_aggregates.scenarios[0].results.empty());
}

}  // namespace
}  // namespace dnstime::campaign
