# End-to-end smoke of the distributed campaign coordinator, run by ctest
# (see the add_test in the top-level CMakeLists). Exercises the full
# failure model in one pass:
#
#   1. single-process, single-thread journaled run -> baseline report;
#   2. 4-worker distributed run over the SAME seed, with worker 1
#      SIGKILLed by the coordinator's test hook after 5 trials land —
#      its un-acked lease tail must be reissued and rebalanced;
#   3. the two report files must be byte-identical (cmake -E
#      compare_files), which is the distributed layer's whole contract:
#      process count, stealing and mid-campaign death may change timing,
#      never bytes.
#
# Expects -DSWEEP=<path to example_campaign_sweep> and -DWORK_DIR=<scratch>.

if(NOT SWEEP OR NOT WORK_DIR)
  message(FATAL_ERROR "dist_smoke.cmake needs -DSWEEP=... and -DWORK_DIR=...")
endif()

file(REMOVE_RECURSE "${WORK_DIR}")
file(MAKE_DIRECTORY "${WORK_DIR}")

set(common --trials 2 --seed 4242)

message(STATUS "dist_smoke: baseline single-process run")
execute_process(
  COMMAND ${SWEEP} ${common} --threads 1
          --journal "${WORK_DIR}/journal-base"
          --out "${WORK_DIR}/report-base.txt"
  RESULT_VARIABLE rc
  OUTPUT_QUIET)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "baseline run failed with exit code ${rc}")
endif()

message(STATUS "dist_smoke: 4-worker run, SIGKILLing worker 1 mid-campaign")
execute_process(
  COMMAND ${SWEEP} ${common} --workers 4
          --journal "${WORK_DIR}/journal-dist"
          --progress "${WORK_DIR}/progress"
          --dist-kill-worker 1 --dist-kill-after 5
          --out "${WORK_DIR}/report-dist.txt"
  RESULT_VARIABLE rc
  OUTPUT_QUIET)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "distributed run failed with exit code ${rc}")
endif()

execute_process(
  COMMAND ${CMAKE_COMMAND} -E compare_files
          "${WORK_DIR}/report-base.txt" "${WORK_DIR}/report-dist.txt"
  RESULT_VARIABLE rc)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR
          "distributed report differs from the single-process baseline")
endif()

# The kill hook plus rebalance must leave more shards than workers (the
# reissued tail lands in fresh shard ids) — prove the death path actually
# ran rather than the campaign finishing before the kill.
file(GLOB shards "${WORK_DIR}/journal-dist/shard-*.dtj")
list(LENGTH shards nshards)
if(nshards LESS 4)
  message(FATAL_ERROR "expected >= 4 shards, found ${nshards}")
endif()

message(STATUS "dist_smoke: reports byte-identical across ${nshards} shards")
