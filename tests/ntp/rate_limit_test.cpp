#include "ntp/rate_limit.h"

#include <gtest/gtest.h>

namespace dnstime::ntp {
namespace {

using sim::Duration;
using sim::Time;

const Ipv4Addr kClient{10, 0, 0, 7};

RateLimitConfig enabled() {
  RateLimitConfig cfg;
  cfg.enabled = true;
  return cfg;
}

TEST(RateLimiter, DisabledAlwaysResponds) {
  RateLimiter rl{RateLimitConfig{}};
  Time t;
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(rl.check(kClient, t), RateLimiter::Action::kRespond);
    t = t + Duration::millis(10);
  }
}

TEST(RateLimiter, WellBehavedClientNeverLimited) {
  RateLimiter rl{enabled()};
  Time t;
  for (int i = 0; i < 200; ++i) {
    EXPECT_EQ(rl.check(kClient, t), RateLimiter::Action::kRespond) << i;
    t = t + Duration::seconds(64);  // normal poll interval
  }
}

TEST(RateLimiter, SubGapFloodRefusedOutright) {
  // discard-minimum violations: KoD once, then unconditional silence.
  RateLimiter rl{enabled()};
  Time t;
  EXPECT_EQ(rl.check(kClient, t), RateLimiter::Action::kRespond);
  t = t + Duration::millis(300);
  EXPECT_EQ(rl.check(kClient, t), RateLimiter::Action::kKod);
  for (int i = 0; i < 50; ++i) {
    t = t + Duration::millis(300);
    EXPECT_EQ(rl.check(kClient, t), RateLimiter::Action::kDrop);
  }
  EXPECT_TRUE(rl.is_limited(kClient, t + Duration::millis(100)));
}

TEST(RateLimiter, BurstToleratedThenAverageEnforced) {
  // 1 Hz probing (the §VII-A scan cadence): the burst bucket answers the
  // first ~16 queries, after which roughly one token per 8 s remains.
  RateLimiter rl{enabled()};
  Time t;
  int first_half = 0, second_half = 0;
  for (int i = 0; i < 64; ++i) {
    auto action = rl.check(kClient, t);
    if (action == RateLimiter::Action::kRespond) {
      (i < 32 ? first_half : second_half)++;
    }
    t = t + Duration::seconds(1);
  }
  EXPECT_GT(first_half, second_half + 8)
      << "the paper's halves heuristic must fire for this server";
  EXPECT_GE(first_half, 16);  // the burst
  EXPECT_LE(second_half, 6);  // ~1 per 8 s at most
}

TEST(RateLimiter, KodsAreSparseDuringSustainedProbing) {
  // One KoD per dry spell: a trickle of bucket refills restarts the spell
  // every ~8 s, so a 64 s probe sees a handful of KoDs, not a stream.
  RateLimiter rl{enabled()};
  Time t;
  int kods = 0;
  for (int i = 0; i < 64; ++i) {
    if (rl.check(kClient, t) == RateLimiter::Action::kKod) kods++;
    t = t + Duration::seconds(1);
  }
  EXPECT_GE(kods, 1);
  EXPECT_LE(kods, 8);
}

TEST(RateLimiter, RecoversAfterQuietPeriod) {
  RateLimiter rl{enabled()};
  Time t;
  for (int i = 0; i < 40; ++i) {  // sub-gap flood: drains and blocks
    (void)rl.check(kClient, t);
    t = t + Duration::millis(300);
  }
  EXPECT_TRUE(rl.is_limited(kClient, t));
  // After 2 minutes of silence the bucket has refilled well past 1.
  t = t + Duration::minutes(2);
  EXPECT_FALSE(rl.is_limited(kClient, t));
  EXPECT_EQ(rl.check(kClient, t), RateLimiter::Action::kRespond);
}

TEST(RateLimiter, SpoofedFloodPunishesVictimAddress) {
  // The run-time attack's core: a sub-gap flood claiming to come from the
  // victim keeps the victim limited even though the victim polls politely.
  RateLimiter rl{enabled()};
  Time t;
  for (int i = 0; i < 300; ++i) {
    (void)rl.check(kClient, t);
    t = t + Duration::millis(400);
  }
  // Victim's genuine poll lands 0.3 s after the last flood packet.
  t = t + Duration::millis(300);
  EXPECT_NE(rl.check(kClient, t), RateLimiter::Action::kRespond);
}

TEST(RateLimiter, OtherSourcesUnaffected) {
  RateLimiter rl{enabled()};
  Time t;
  for (int i = 0; i < 50; ++i) {
    (void)rl.check(kClient, t);
    t = t + Duration::millis(200);
  }
  EXPECT_EQ(rl.check(Ipv4Addr{10, 0, 0, 8}, t),
            RateLimiter::Action::kRespond);
}

TEST(RateLimiter, LeakProbabilityAnswersSometimes) {
  auto cfg = enabled();
  cfg.leak_probability = 0.3;
  cfg.send_kod = false;
  RateLimiter rl{cfg, Rng{99}};
  Time t;
  int responded = 0;
  for (int i = 0; i < 300; ++i) {
    if (rl.check(kClient, t) == RateLimiter::Action::kRespond) responded++;
    t = t + Duration::millis(300);
  }
  EXPECT_GT(responded, 50);   // leaks exist
  EXPECT_LT(responded, 180);  // but most are dropped
}

}  // namespace
}  // namespace dnstime::ntp
