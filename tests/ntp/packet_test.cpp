#include "ntp/packet.h"

#include <gtest/gtest.h>

#include "ntp/timestamps.h"

namespace dnstime::ntp {
namespace {

TEST(NtpPacket, RoundTrip) {
  NtpPacket pkt;
  pkt.leap = 0;
  pkt.version = 4;
  pkt.mode = Mode::kServer;
  pkt.stratum = 2;
  pkt.poll = 6;
  pkt.precision = -23;
  pkt.refid = Ipv4Addr{10, 1, 2, 3}.value();
  pkt.ref_time = kSimEpochNtpSeconds - 16;
  pkt.org_time = kSimEpochNtpSeconds + 1.25;
  pkt.rx_time = kSimEpochNtpSeconds + 1.5;
  pkt.tx_time = kSimEpochNtpSeconds + 1.75;
  Bytes wire = encode_ntp(pkt);
  ASSERT_EQ(wire.size(), 48u);
  NtpPacket back = decode_ntp(wire);
  EXPECT_EQ(back.mode, Mode::kServer);
  EXPECT_EQ(back.stratum, 2);
  EXPECT_EQ(back.precision, -23);
  EXPECT_EQ(back.refid, pkt.refid);
  EXPECT_NEAR(back.org_time, pkt.org_time, 1e-6);
  EXPECT_NEAR(back.rx_time, pkt.rx_time, 1e-6);
  EXPECT_NEAR(back.tx_time, pkt.tx_time, 1e-6);
}

TEST(NtpPacket, TimestampPrecisionIsSubMicrosecond) {
  double t = kSimEpochNtpSeconds + 0.123456789;
  EXPECT_NEAR(from_wire_timestamp(to_wire_timestamp(t)), t, 1e-7);
}

TEST(NtpPacket, KodDetection) {
  NtpPacket kod;
  kod.mode = Mode::kServer;
  kod.stratum = 0;
  kod.refid = kKodRate;
  EXPECT_TRUE(kod.is_kod());
  EXPECT_TRUE(kod.is_rate_kod());
  Bytes wire = encode_ntp(kod);
  EXPECT_TRUE(decode_ntp(wire).is_rate_kod());

  NtpPacket normal;
  normal.stratum = 2;
  EXPECT_FALSE(normal.is_kod());
}

TEST(NtpPacket, ShortPacketRejected) {
  Bytes junk(20, 0);
  EXPECT_THROW((void)decode_ntp(junk), DecodeError);
}

TEST(NtpPacket, ConfigMessagesRoundTrip) {
  EXPECT_TRUE(is_config_request(encode_config_request()));
  ConfigResponse resp;
  resp.upstream_addrs = {Ipv4Addr{1, 2, 3, 4}, Ipv4Addr{5, 6, 7, 8}};
  resp.configured_hostname = "pool.ntp.org";
  auto back = decode_config_response(encode_config_response(resp));
  ASSERT_TRUE(back);
  EXPECT_EQ(back->upstream_addrs.size(), 2u);
  EXPECT_EQ(back->configured_hostname, "pool.ntp.org");
  EXPECT_FALSE(decode_config_response(encode_config_request()));
}

}  // namespace
}  // namespace dnstime::ntp
