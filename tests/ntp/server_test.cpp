#include "ntp/server.h"

#include <gtest/gtest.h>

namespace dnstime::ntp {
namespace {

using sim::Duration;

struct ServerWorld {
  sim::EventLoop loop;
  sim::Network net{loop, Rng{31}};
  net::NetStack server_stack{net, Ipv4Addr{10, 1, 0, 1}, net::StackConfig{},
                             Rng{32}};
  net::NetStack client_stack{net, Ipv4Addr{10, 2, 0, 1}, net::StackConfig{},
                             Rng{33}};
  SystemClock server_clock{0.0};

  std::optional<NtpPacket> query_once(double client_wall = 100.0) {
    std::optional<NtpPacket> got;
    u16 port = client_stack.ephemeral_port();
    client_stack.bind_udp(port, [&](const net::UdpEndpoint&, u16,
                                    BufView payload) {
      got = decode_ntp(payload);
    });
    NtpPacket q;
    q.mode = Mode::kClient;
    q.tx_time = client_wall;
    client_stack.send_udp(server_stack.addr(), port, kNtpPort, encode_ntp(q));
    loop.run_for(Duration::seconds(1));
    client_stack.unbind_udp(port);
    return got;
  }
};

TEST(NtpServer, AnswersModeThreeWithServerTime) {
  ServerWorld w;
  NtpServer server(w.server_stack, w.server_clock, ServerConfig{});
  auto resp = w.query_once(123.5);
  ASSERT_TRUE(resp);
  EXPECT_EQ(resp->mode, Mode::kServer);
  EXPECT_EQ(resp->stratum, 2);
  EXPECT_NEAR(resp->org_time, 123.5, 1e-6);  // echoes our T1
  EXPECT_NEAR(resp->tx_time, kSimEpochNtpSeconds, 1.0);
}

TEST(NtpServer, AttackerServerServesShiftedTime) {
  ServerWorld w;
  ServerConfig cfg;
  cfg.time_shift = -500.0;
  NtpServer server(w.server_stack, w.server_clock, cfg);
  auto resp = w.query_once();
  ASSERT_TRUE(resp);
  EXPECT_NEAR(resp->tx_time, kSimEpochNtpSeconds - 500.0, 1.0);
}

TEST(NtpServer, RateLimitedClientGetsKodThenNothing) {
  ServerWorld w;
  ServerConfig cfg;
  cfg.rate_limit.enabled = true;
  cfg.rate_limit.burst = 1;  // tiny burst so the pattern shows immediately
  NtpServer server(w.server_stack, w.server_clock, cfg);
  auto r1 = w.query_once();
  ASSERT_TRUE(r1);
  EXPECT_FALSE(r1->is_kod());
  auto r2 = w.query_once();  // ~1s later: bucket empty
  ASSERT_TRUE(r2);
  EXPECT_TRUE(r2->is_rate_kod());
  auto r3 = w.query_once();
  EXPECT_FALSE(r3.has_value());  // silence
  EXPECT_GT(server.dropped_rate_limited(), 0u);
}

TEST(NtpServer, RefidLeaksUpstreamAddress) {
  ServerWorld w;
  NtpServer server(w.server_stack, w.server_clock, ServerConfig{});
  server.set_upstream(Ipv4Addr{10, 10, 0, 5});
  auto resp = w.query_once();
  ASSERT_TRUE(resp);
  EXPECT_EQ(Ipv4Addr{resp->refid}, (Ipv4Addr{10, 10, 0, 5}));
}

TEST(NtpServer, ConfigInterfaceClosedByDefault) {
  ServerWorld w;
  NtpServer server(w.server_stack, w.server_clock, ServerConfig{});
  server.set_upstream(Ipv4Addr{10, 10, 0, 5});
  bool got = false;
  u16 port = w.client_stack.ephemeral_port();
  w.client_stack.bind_udp(port, [&](const net::UdpEndpoint&, u16,
                                    BufView) { got = true; });
  w.client_stack.send_udp(w.server_stack.addr(), port, kNtpPort,
                          encode_config_request());
  w.loop.run_for(Duration::seconds(1));
  EXPECT_FALSE(got);
}

TEST(NtpServer, OpenConfigInterfaceLeaksEverything) {
  // The 5.3% of §IV-B2c.
  ServerWorld w;
  ServerConfig cfg;
  cfg.open_config_interface = true;
  cfg.configured_hostname = "0.pool.ntp.org";
  NtpServer server(w.server_stack, w.server_clock, cfg);
  server.set_upstream(Ipv4Addr{10, 10, 0, 5});
  std::optional<ConfigResponse> got;
  u16 port = w.client_stack.ephemeral_port();
  w.client_stack.bind_udp(port, [&](const net::UdpEndpoint&, u16,
                                    BufView payload) {
    got = decode_config_response(payload);
  });
  w.client_stack.send_udp(w.server_stack.addr(), port, kNtpPort,
                          encode_config_request());
  w.loop.run_for(Duration::seconds(1));
  ASSERT_TRUE(got.has_value());
  ASSERT_EQ(got->upstream_addrs.size(), 1u);
  EXPECT_EQ(got->upstream_addrs[0], (Ipv4Addr{10, 10, 0, 5}));
  EXPECT_EQ(got->configured_hostname, "0.pool.ntp.org");
}

}  // namespace
}  // namespace dnstime::ntp
