// Behavioural tests of the NTP client models against a live World:
// boot-time synchronisation, boot-time attack applicability (Table I "all
// clients"), and the per-implementation run-time DNS behaviour that
// decides run-time attackability.
#include <gtest/gtest.h>

#include "attack/chronos_attack.h"
#include "attack/ratelimit_abuser.h"
#include "ntp/clients/chrony.h"
#include "ntp/clients/ntpclient.h"
#include "ntp/clients/ntpd.h"
#include "ntp/clients/ntpdate.h"
#include "ntp/clients/openntpd.h"
#include "ntp/clients/sntp_timesyncd.h"
#include "scenario/world.h"

namespace dnstime::ntp {
namespace {

using scenario::World;
using scenario::WorldConfig;
using sim::Duration;

const Ipv4Addr kVictimAddr{10, 77, 0, 1};

ClientBaseConfig base_config(World& world) {
  ClientBaseConfig cfg;
  cfg.resolver = world.resolver_addr();
  return cfg;
}

std::unique_ptr<NtpClientBase> make_client(const std::string& kind,
                                           World& world,
                                           scenario::World::Host& host) {
  auto cfg = base_config(world);
  if (kind == "ntpd") {
    return std::make_unique<NtpdClient>(*host.stack, host.clock, cfg);
  }
  if (kind == "chrony") {
    return std::make_unique<ChronyClient>(*host.stack, host.clock, cfg);
  }
  if (kind == "openntpd") {
    return std::make_unique<OpenntpdClient>(*host.stack, host.clock, cfg);
  }
  if (kind == "timesyncd") {
    return std::make_unique<TimesyncdClient>(*host.stack, host.clock, cfg);
  }
  if (kind == "ntpclient") {
    return std::make_unique<NtpclientClient>(*host.stack, host.clock, cfg);
  }
  if (kind == "android") {
    return std::make_unique<AndroidSntpClient>(*host.stack, host.clock, cfg);
  }
  if (kind == "ntpdate") {
    return std::make_unique<NtpdateClient>(*host.stack, host.clock, cfg);
  }
  return nullptr;
}

class AllClients : public ::testing::TestWithParam<const char*> {};

INSTANTIATE_TEST_SUITE_P(ClientKinds, AllClients,
                         ::testing::Values("ntpd", "chrony", "openntpd",
                                           "timesyncd", "ntpclient",
                                           "android", "ntpdate"),
                         [](const auto& info) { return info.param; });

TEST_P(AllClients, BootSyncCorrectsWrongClock) {
  WorldConfig wc;
  wc.rate_limit_fraction = 0.0;  // friendly servers
  World world(wc);
  auto& host = world.add_host(kVictimAddr);
  host.clock.step(300.0, world.loop().now());  // dead RTC: clock is off
  auto client = make_client(GetParam(), world, host);
  client->start();
  world.run_for(Duration::minutes(15));
  EXPECT_NEAR(host.clock.offset(), 0.0, 1.0)
      << GetParam() << " failed to synchronise at boot";
  EXPECT_GE(client->dns_queries(), 1u);
}

TEST_P(AllClients, BootTimeAttackShiftsEveryClient) {
  // Table I: every implementation is vulnerable at boot-time. Poisoned
  // cache => the very first DNS answer is the attacker's fleet.
  World world;
  attack::ChronosAttack inject(
      world.attacker(),
      attack::ChronosAttackConfig{.resolver_addr = world.resolver_addr(),
                                  .malicious_ntp = world.attacker_ntp_addrs()});
  inject.inject_whitebox(world.resolver());
  ASSERT_TRUE(world.pool_a_poisoned());

  auto& host = world.add_host(kVictimAddr);
  auto client = make_client(GetParam(), world, host);
  client->start();
  world.run_for(Duration::minutes(20));
  EXPECT_NEAR(host.clock.offset(), -500.0, 5.0)
      << GetParam() << " resisted the boot-time attack";
}

TEST(NtpdClient, GrowsToSixAssociations) {
  WorldConfig wc;
  wc.rate_limit_fraction = 0.0;
  World world(wc);
  auto& host = world.add_host(kVictimAddr);
  NtpdClient client(*host.stack, host.clock, base_config(world));
  client.start();
  world.run_for(Duration::minutes(20));
  EXPECT_EQ(client.association_count(), 6u);  // NTP_MAXCLOCK minus pool slots
}

TEST(NtpdClient, RunTimeFloodForcesDnsRequery) {
  World world;  // all pool servers rate limit
  auto& host = world.add_host(kVictimAddr);
  NtpdClient client(*host.stack, host.clock, base_config(world));
  client.start();
  world.run_for(Duration::minutes(10));
  u64 refills_before = client.dns_refills();
  ASSERT_GT(client.association_count(), 0u);

  attack::RateLimitAbuser abuser(world.attacker(), kVictimAddr);
  abuser.disrupt_all(world.pool_server_addrs());
  world.run_for(Duration::minutes(20));
  EXPECT_GT(client.dns_refills(), refills_before)
      << "flood did not force new DNS lookups";
}

TEST(NtpdClient, SystemPeerLeaksViaAttachedServer) {
  WorldConfig wc;
  wc.rate_limit_fraction = 0.0;
  World world(wc);
  auto& host = world.add_host(kVictimAddr);
  NtpdClient client(*host.stack, host.clock, base_config(world));
  SystemClock& shared_clock = host.clock;
  NtpServer victim_server(*host.stack, shared_clock, ServerConfig{});
  client.attach_server(&victim_server);
  client.start();
  world.run_for(Duration::minutes(10));
  EXPECT_NE(client.system_peer(), kAnyAddr);
  EXPECT_EQ(victim_server.upstream(), client.system_peer());
}

TEST(OpenntpdClient, NeverQueriesDnsAtRunTime) {
  World world;
  auto& host = world.add_host(kVictimAddr);
  OpenntpdClient client(*host.stack, host.clock, base_config(world));
  client.start();
  world.run_for(Duration::minutes(10));
  u64 queries_after_boot = client.dns_queries();
  ASSERT_EQ(queries_after_boot, 1u);

  // Kill every server: openntpd just stops synchronising (§V-A2).
  attack::RateLimitAbuser abuser(world.attacker(), kVictimAddr);
  abuser.disrupt_all(world.pool_server_addrs());
  world.run_for(Duration::hours(1));
  EXPECT_EQ(client.dns_queries(), queries_after_boot);
}

TEST(OpenntpdClient, ConstraintRejectsShiftedTime) {
  // §V-A1: the HTTPS Date-header option bounds acceptable offsets.
  World world;
  attack::ChronosAttack inject(
      world.attacker(),
      attack::ChronosAttackConfig{.resolver_addr = world.resolver_addr(),
                                  .malicious_ntp = world.attacker_ntp_addrs()});
  inject.inject_whitebox(world.resolver());

  auto& host = world.add_host(kVictimAddr);
  OpenntpdConfig oc;
  oc.constraint_window = 60.0;  // HTTPS date is accurate to ~a minute
  OpenntpdClient client(*host.stack, host.clock, base_config(world), oc);
  client.start();
  world.run_for(Duration::minutes(20));
  EXPECT_NEAR(host.clock.offset(), 0.0, 1.0);  // -500 s was rejected
}

TEST(TimesyncdClient, WalksCachedListThenRequeries) {
  World world;
  auto& host = world.add_host(kVictimAddr);
  TimesyncdClient client(*host.stack, host.clock, base_config(world));
  client.start();
  world.run_for(Duration::minutes(5));
  ASSERT_EQ(client.current_servers().size(), 4u);  // cached DNS answer
  u64 lookups = client.dns_lookups();

  attack::RateLimitAbuser abuser(world.attacker(), kVictimAddr);
  abuser.disrupt_all(world.pool_server_addrs());
  world.run_for(Duration::minutes(30));
  EXPECT_GT(client.dns_lookups(), lookups)
      << "exhausting the cached list must trigger a DNS re-query";
}

TEST(NtpclientClient, SingleServerNoRequery) {
  World world;
  auto& host = world.add_host(kVictimAddr);
  NtpclientClient client(*host.stack, host.clock, base_config(world));
  client.start();
  world.run_for(Duration::minutes(5));
  EXPECT_EQ(client.current_servers().size(), 1u);
  u64 queries = client.dns_queries();
  attack::RateLimitAbuser abuser(world.attacker(), kVictimAddr);
  abuser.disrupt_all(world.pool_server_addrs());
  world.run_for(Duration::minutes(30));
  EXPECT_EQ(client.dns_queries(), queries);
}

TEST(AndroidSntpClient, ResolvesEveryQuery) {
  WorldConfig wc;
  wc.rate_limit_fraction = 0.0;
  World world(wc);
  auto& host = world.add_host(kVictimAddr);
  AndroidSntpClient client(*host.stack, host.clock, base_config(world));
  client.start();
  world.run_for(Duration::minutes(10));
  // ~1 lookup per poll interval (64 s) => roughly 9-10 in 10 minutes.
  EXPECT_GE(client.dns_queries(), 5u);
}

TEST(NtpdateClient, OneShotStepsClockAndExits) {
  WorldConfig wc;
  wc.rate_limit_fraction = 0.0;
  World world(wc);
  auto& host = world.add_host(kVictimAddr);
  host.clock.step(-300.0, world.loop().now());
  NtpdateClient client(*host.stack, host.clock, base_config(world));
  std::optional<double> applied;
  client.run([&](double offset) { applied = offset; });
  world.run_for(Duration::minutes(2));
  ASSERT_TRUE(applied.has_value());
  EXPECT_NEAR(*applied, 300.0, 1.0);
  EXPECT_NEAR(host.clock.offset(), 0.0, 1.0);
}

TEST(ClientDiscipline, PanicThresholdRefusesHugeRunTimeShift) {
  WorldConfig wc;
  wc.rate_limit_fraction = 0.0;
  wc.attacker_time_shift = -2000.0;  // beyond ntpd's 1000 s panic limit
  World world(wc);
  auto& host = world.add_host(kVictimAddr);
  NtpdClient client(*host.stack, host.clock, base_config(world));
  client.start();
  world.run_for(Duration::minutes(10));
  ASSERT_NEAR(host.clock.offset(), 0.0, 1.0);

  // Now poison + kill servers: the client switches to attacker servers but
  // must refuse the 2000 s run-time step.
  attack::ChronosAttack inject(
      world.attacker(),
      attack::ChronosAttackConfig{.resolver_addr = world.resolver_addr(),
                                  .malicious_ntp = world.attacker_ntp_addrs()});
  inject.inject_whitebox(world.resolver());
  attack::RateLimitAbuser abuser(world.attacker(), kVictimAddr);
  abuser.disrupt_all(world.pool_server_addrs());
  world.run_for(Duration::hours(2));
  EXPECT_NEAR(host.clock.offset(), 0.0, 1.0)
      << "panic threshold must hold at run time";
}

}  // namespace
}  // namespace dnstime::ntp
