// Property tests of the Chronos trim-select algorithm: the 2/3 security
// boundary must hold exactly (§VI: "the security guarantees of Chronos
// vanish if the attacker is able to control more than 2/3 of the NTP
// servers in the pool").
#include "chronos/selection.h"

#include <gtest/gtest.h>

namespace dnstime::chronos {
namespace {

std::vector<double> mixed_offsets(int honest, int malicious,
                                  double shift = -500.0) {
  std::vector<double> v;
  for (int i = 0; i < honest; ++i) {
    v.push_back(0.001 * (i % 5));  // honest servers: near-zero offsets
  }
  for (int i = 0; i < malicious; ++i) v.push_back(shift);
  return v;
}

TEST(ChronosSelection, AllHonestAccepted) {
  auto r = chronos_trim_select(mixed_offsets(15, 0), ChronosParams{});
  ASSERT_TRUE(r.accepted);
  EXPECT_NEAR(r.offset, 0.0, 0.01);
}

TEST(ChronosSelection, MinorityAttackerTrimmedAway) {
  // Up to a third malicious: the shifted samples are discarded.
  for (int bad = 1; bad <= 5; ++bad) {
    auto r = chronos_trim_select(mixed_offsets(15 - bad, bad),
                                 ChronosParams{});
    ASSERT_TRUE(r.accepted) << bad << " malicious";
    EXPECT_NEAR(r.offset, 0.0, 0.01) << bad << " malicious";
  }
}

TEST(ChronosSelection, MiddlingAttackerCausesDisagreement) {
  // Between 1/3 and 2/3: survivors mix honest and malicious -> spread
  // exceeds omega -> rejected (no silent time shift).
  for (int bad = 6; bad <= 9; ++bad) {
    auto r = chronos_trim_select(mixed_offsets(15 - bad, bad),
                                 ChronosParams{});
    EXPECT_FALSE(r.accepted) << bad << " malicious";
    EXPECT_TRUE(r.agreement_failed) << bad << " malicious";
  }
}

TEST(ChronosSelection, SupermajorityAttackerWinsButTripsDriftCheck) {
  // >2/3 malicious: survivors agree on the shifted value. The sampled
  // pass still rejects it via the drift bound...
  auto r = chronos_trim_select(mixed_offsets(3, 12), ChronosParams{});
  EXPECT_FALSE(r.accepted);
  EXPECT_TRUE(r.drift_check_failed);
  // ...but the panic pass (whole pool, no drift bound) accepts it — the
  // §VI-C end state.
  auto p = chronos_panic_select(mixed_offsets(3, 12), ChronosParams{});
  ASSERT_TRUE(p.accepted);
  EXPECT_NEAR(p.offset, -500.0, 0.01);
}

TEST(ChronosSelection, PanicRefusesContestedPool) {
  auto p = chronos_panic_select(mixed_offsets(8, 7), ChronosParams{});
  EXPECT_FALSE(p.accepted);
}

TEST(ChronosSelection, ExactTwoThirdsBoundary) {
  // 96-server pool sweep: with the bottom/top thirds trimmed, an attacker
  // controlling >= 2/3 of the samples owns every survivor and wins the
  // panic pass; below that, survivors mix and the update is refused.
  for (int bad = 0; bad <= 96; ++bad) {
    auto p = chronos_panic_select(mixed_offsets(96 - bad, bad),
                                  ChronosParams{});
    bool attacker_won = p.accepted && p.offset < -400.0;
    if (bad >= 64) {  // 2/3 of 96
      EXPECT_TRUE(attacker_won) << bad;
    } else {
      EXPECT_FALSE(attacker_won) << bad;
    }
  }
}

TEST(ChronosSelection, EmptyAndTinyInputs) {
  EXPECT_FALSE(chronos_trim_select({}, ChronosParams{}).accepted);
  EXPECT_FALSE(chronos_trim_select({0.0, 0.0}, ChronosParams{}).accepted ==
               false &&
               false);  // 2 samples: trim d=0, survivors=2 -> accepted
  auto r = chronos_trim_select({0.0, 0.001}, ChronosParams{});
  EXPECT_TRUE(r.accepted);
}

TEST(ChronosSelection, SmallDriftAccepted) {
  std::vector<double> offsets(15, 0.050);  // 50 ms everywhere
  auto r = chronos_trim_select(offsets, ChronosParams{});
  ASSERT_TRUE(r.accepted);
  EXPECT_NEAR(r.offset, 0.050, 1e-9);
}

}  // namespace
}  // namespace dnstime::chronos
