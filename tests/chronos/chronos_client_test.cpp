// Chronos pool generation and the §VI-C DNS poisoning attack, end to end.
#include "chronos/chronos_client.h"

#include <gtest/gtest.h>

#include "attack/chronos_attack.h"
#include "scenario/world.h"

namespace dnstime::chronos {
namespace {

using attack::ChronosAttack;
using attack::ChronosAttackConfig;
using scenario::World;
using scenario::WorldConfig;
using sim::Duration;

const Ipv4Addr kVictimAddr{10, 77, 0, 2};

ntp::ClientBaseConfig base_config(World& world) {
  ntp::ClientBaseConfig cfg;
  cfg.resolver = world.resolver_addr();
  return cfg;
}

TEST(PoolBuilder, UnionGrowsFourPerHour) {
  WorldConfig wc;
  wc.pool_size = 96;  // enough that rotation never repeats in 24 queries
  World world(wc);
  auto& host = world.add_host(kVictimAddr);
  PoolBuilder builder(*host.stack, world.resolver_addr());
  builder.start();
  world.run_for(Duration::hours(25));
  EXPECT_TRUE(builder.finished());
  EXPECT_EQ(builder.queries_done(), 24);
  // 4 fresh addresses per hourly query => 96 total ("this results in a
  // maximum of 96 servers").
  EXPECT_EQ(builder.pool().size(), 96u);
}

TEST(PoolBuilder, SmallPoolSaturates) {
  WorldConfig wc;
  wc.pool_size = 12;
  World world(wc);
  auto& host = world.add_host(kVictimAddr);
  PoolBuilder builder(*host.stack, world.resolver_addr());
  builder.start();
  world.run_for(Duration::hours(25));
  EXPECT_EQ(builder.pool().size(), 12u);  // union saturates at pool size
}

TEST(ChronosAttackBound, MatchesPaperFormula) {
  // 2/3 * (89 + 4N) <= 89  =>  N <= 11 (§VI-C).
  EXPECT_EQ(ChronosAttack::max_tolerable_honest_rounds(89), 11);
  for (int n = 0; n <= 11; ++n) {
    EXPECT_TRUE(ChronosAttack::attacker_wins(n, 89)) << n;
  }
  for (int n = 12; n <= 24; ++n) {
    EXPECT_FALSE(ChronosAttack::attacker_wins(n, 89)) << n;
  }
}

TEST(ChronosAttackBound, FewerRecordsTolerateFewerRounds) {
  // A smaller injection shrinks the window monotonically.
  int last = 1000;
  for (std::size_t count : {89u, 60u, 40u, 20u, 8u}) {
    int n = ChronosAttack::max_tolerable_honest_rounds(count);
    EXPECT_LE(n, last);
    last = n;
  }
  EXPECT_EQ(ChronosAttack::max_tolerable_honest_rounds(8), 1);
}

struct ChronosScenarioResult {
  double clock_offset;
  std::size_t pool_size;
  std::size_t malicious_in_pool;
};

/// Run the full §VI-C attack with the poisoning landing after
/// `honest_rounds` hourly queries; return the victim's end state.
ChronosScenarioResult run_chronos_attack(int honest_rounds) {
  WorldConfig wc;
  wc.pool_size = 96;
  wc.attacker_ntp_count = 89;  // max addresses in one unfragmented response
  // Honest servers answer every Chronos probe here: rate limiting would
  // silence them during panic re-polls and hand the attacker extra wins
  // (that interaction is exercised separately).
  wc.rate_limit_fraction = 0.0;
  World world(wc);
  auto& host = world.add_host(kVictimAddr);

  ChronosClientConfig cc;
  cc.params.sample_size = 15;
  ChronosClient client(*host.stack, host.clock, base_config(world), cc);
  client.start();

  // Let exactly `honest_rounds` hourly queries complete (the first fires
  // at t=0), then poison the resolver cache with the 89-record, TTL>24h
  // RRset before the next one.
  world.run_for(Duration::hours(honest_rounds - 1) + Duration::minutes(30));
  ChronosAttack attack(
      world.attacker(),
      ChronosAttackConfig{.resolver_addr = world.resolver_addr(),
                          .malicious_ntp = world.attacker_ntp_addrs()});
  attack.inject_whitebox(world.resolver());

  // Ride out the rest of the 24 h pool build plus operation time.
  world.run_for(Duration::hours(27 - honest_rounds));

  ChronosScenarioResult r{};
  r.clock_offset = host.clock.offset();
  r.pool_size = client.pool_builder().pool().size();
  for (Ipv4Addr addr : client.pool_builder().pool()) {
    if (world.is_attacker_ntp(addr)) r.malicious_in_pool++;
  }
  return r;
}

TEST(ChronosClient, HonestPoolKeepsTime) {
  WorldConfig wc;
  wc.pool_size = 96;
  wc.rate_limit_fraction = 0.0;
  World world(wc);
  auto& host = world.add_host(kVictimAddr);
  host.clock.step(2.0, world.loop().now());  // slightly wrong clock
  ChronosClient client(*host.stack, host.clock, base_config(world));
  client.start();
  world.run_for(Duration::hours(6));
  EXPECT_GT(client.updates_accepted(), 0u);
  EXPECT_NEAR(host.clock.offset(), 0.0, 0.5);
}

TEST(ChronosClient, PoisonAtRoundFiveShiftsTime) {
  // N=5 <= 11: attacker controls 89 / (89+20) = 82% > 2/3 of the pool.
  auto r = run_chronos_attack(5);
  EXPECT_EQ(r.malicious_in_pool, 89u);
  EXPECT_NEAR(r.clock_offset, -500.0, 5.0);
}

TEST(ChronosClient, PoisonAtRoundElevenStillWins) {
  // N=11: the paper's exact boundary (89 vs 44 honest -> 66.9% > 2/3).
  auto r = run_chronos_attack(11);
  EXPECT_NEAR(r.clock_offset, -500.0, 5.0);
}

TEST(ChronosClient, PoisonAtRoundTwelveFailsSafe) {
  // N=12: 89 vs 48 honest = 65% < 2/3 — Chronos detects disagreement and
  // refuses to update (clock unchanged).
  auto r = run_chronos_attack(12);
  EXPECT_NEAR(r.clock_offset, 0.0, 0.5);
  EXPECT_GT(r.malicious_in_pool, 0u);  // pool *is* polluted, just not enough
}

}  // namespace
}  // namespace dnstime::chronos
