#include "net/checksum.h"

#include <gtest/gtest.h>

#include "common/bytes.h"
#include "common/rng.h"

namespace dnstime::net {
namespace {

TEST(Checksum, EmptyBufferSumsToZero) {
  EXPECT_EQ(ones_complement_sum({}), 0);
  EXPECT_EQ(internet_checksum({}), 0xFFFF);
}

TEST(Checksum, Rfc1071WorkedExample) {
  // Classic example from RFC 1071 §3: {00 01, f2 03, f4 f5, f6 f7}.
  const u8 data[] = {0x00, 0x01, 0xf2, 0x03, 0xf4, 0xf5, 0xf6, 0xf7};
  EXPECT_EQ(ones_complement_sum(data), 0xddf2);
  EXPECT_EQ(internet_checksum(data), static_cast<u16>(~0xddf2));
}

TEST(Checksum, OddLengthPadsWithZero) {
  const u8 data[] = {0x12, 0x34, 0x56};
  // 0x1234 + 0x5600 = 0x6834
  EXPECT_EQ(ones_complement_sum(data), 0x6834);
}

TEST(Checksum, CarryWrapsAround) {
  const u8 data[] = {0xFF, 0xFF, 0x00, 0x02};
  // 0xFFFF + 0x0002 = 0x10001 -> fold -> 0x0002
  EXPECT_EQ(ones_complement_sum(data), 0x0002);
}

TEST(Checksum, AddAndSubAreInverse) {
  for (u32 a = 0; a < 0x10000; a += 0x111) {
    for (u32 b = 0; b < 0x10000; b += 0x373) {
      u16 s = ones_complement_add(static_cast<u16>(a), static_cast<u16>(b));
      u16 back = ones_complement_sub(s, static_cast<u16>(b));
      // In ones' complement, 0x0000 and 0xFFFF are both zero; compare
      // modulo that equivalence.
      u16 want = static_cast<u16>(a);
      bool equal = back == want ||
                   (back == 0 && want == 0xFFFF) ||
                   (back == 0xFFFF && want == 0);
      EXPECT_TRUE(equal) << std::hex << a << "+" << b << " sum=" << s
                         << " back=" << back;
    }
  }
}

TEST(Checksum, CompensationPreservesSum) {
  // The §III-3 core trick: modify bytes, compensate elsewhere, total ones'
  // complement sum unchanged.
  Bytes f2 = {0x01, 0x02, 0x03, 0x04, 0x05, 0x06, 0x07, 0x08};
  Bytes modified = f2;
  modified[0] = 0xAA;
  modified[1] = 0xBB;
  u16 orig = ones_complement_sum(f2);
  u16 now = ones_complement_sum(modified);
  u16 delta = ones_complement_sub(orig, now);
  // Fold the delta into the last 16-bit word.
  u16 last = (u16{modified[6]} << 8) | modified[7];
  u16 fixed = ones_complement_add(last, delta);
  modified[6] = static_cast<u8>(fixed >> 8);
  modified[7] = static_cast<u8>(fixed);
  u16 after = ones_complement_sum(modified);
  bool equal = after == orig || (after == 0 && orig == 0xFFFF) ||
               (after == 0xFFFF && orig == 0);
  EXPECT_TRUE(equal) << std::hex << orig << " vs " << after;
}

TEST(Checksum, WordAtATimeMatchesScalarOracle) {
  // The shipped ones_complement_sum folds 8 bytes per iteration; the scalar
  // byte-pair version is kept as the oracle. Randomised lengths exercise
  // every 8/4/2/1-byte tail combination, and offset slices into the same
  // backing array exercise every load alignment.
  Rng rng{20260731};
  Bytes backing(4200);
  for (auto& b : backing) b = static_cast<u8>(rng.uniform(0, 255));
  for (int iter = 0; iter < 2000; ++iter) {
    std::size_t offset = rng.uniform(0, 7);
    std::size_t max_len = backing.size() - offset;
    std::size_t len = rng.uniform(0, 64) == 0
                          ? rng.uniform(0, static_cast<u64>(max_len))
                          : rng.uniform(0, 100);
    auto slice = std::span(backing).subspan(offset, len);
    ASSERT_EQ(ones_complement_sum(slice), ones_complement_sum_scalar(slice))
        << "offset=" << offset << " len=" << len;
  }
  // Exhaustive short lengths at every alignment.
  for (std::size_t offset = 0; offset < 8; ++offset) {
    for (std::size_t len = 0; len <= 40; ++len) {
      auto slice = std::span(backing).subspan(offset, len);
      ASSERT_EQ(ones_complement_sum(slice), ones_complement_sum_scalar(slice))
          << "offset=" << offset << " len=" << len;
    }
  }
}

TEST(Checksum, WordAtATimeAllOnesAndZeros) {
  Bytes zeros(37, 0);
  EXPECT_EQ(ones_complement_sum(zeros), ones_complement_sum_scalar(zeros));
  EXPECT_EQ(ones_complement_sum(zeros), 0);
  Bytes ones(64, 0xFF);
  EXPECT_EQ(ones_complement_sum(ones), ones_complement_sum_scalar(ones));
  EXPECT_EQ(ones_complement_sum(ones), 0xFFFF);
}

TEST(Checksum, PseudoHeaderMatchesManualComputation) {
  Ipv4Addr src{192, 0, 2, 1};
  Ipv4Addr dst{198, 51, 100, 7};
  u16 sum = pseudo_header_sum(src, dst, 17, 20);
  u16 manual = 0;
  manual = ones_complement_add(manual, 0xC000);
  manual = ones_complement_add(manual, 0x0201);
  manual = ones_complement_add(manual, 0xC633);
  manual = ones_complement_add(manual, 0x6407);
  manual = ones_complement_add(manual, 17);
  manual = ones_complement_add(manual, 20);
  EXPECT_EQ(sum, manual);
}

}  // namespace
}  // namespace dnstime::net
