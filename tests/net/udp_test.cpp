#include "net/udp.h"

#include <gtest/gtest.h>

namespace dnstime::net {
namespace {

const Ipv4Addr kSrc{192, 0, 2, 10};
const Ipv4Addr kDst{203, 0, 113, 5};

TEST(UdpCodec, RoundTrip) {
  UdpDatagram d{.src_port = 5353, .dst_port = 53, .payload = {9, 8, 7}};
  Bytes wire = encode_udp(d, kSrc, kDst);
  ASSERT_EQ(wire.size(), kUdpHeaderSize + 3);
  UdpDatagram back = decode_udp(wire, kSrc, kDst);
  EXPECT_EQ(back.src_port, 5353);
  EXPECT_EQ(back.dst_port, 53);
  EXPECT_EQ(back.payload, d.payload);
}

TEST(UdpCodec, ChecksumDetectsPayloadCorruption) {
  UdpDatagram d{.src_port = 1, .dst_port = 2,
                .payload = {0x10, 0x20, 0x30, 0x40}};
  Bytes wire = encode_udp(d, kSrc, kDst);
  wire[kUdpHeaderSize + 1] ^= 0x55;
  EXPECT_THROW((void)decode_udp(wire, kSrc, kDst), DecodeError);
}

TEST(UdpCodec, ChecksumBindsAddresses) {
  // Same bytes, different pseudo header => checksum failure. This is why
  // the attacker must spoof the genuine nameserver's source address.
  UdpDatagram d{.src_port = 1, .dst_port = 2, .payload = {1, 2, 3}};
  Bytes wire = encode_udp(d, kSrc, kDst);
  EXPECT_THROW((void)decode_udp(wire, Ipv4Addr{1, 2, 3, 4}, kDst),
               DecodeError);
}

TEST(UdpCodec, ZeroChecksumSkipsVerification) {
  UdpDatagram d{.src_port = 7, .dst_port = 9, .payload = {5}};
  Bytes wire = encode_udp(d, kSrc, kDst);
  wire[6] = 0;
  wire[7] = 0;  // checksum = 0 means "not computed"
  UdpDatagram back = decode_udp(wire, kSrc, kDst);
  EXPECT_EQ(back.payload, Bytes{5});
}

TEST(UdpCodec, EmptyPayload) {
  UdpDatagram d{.src_port = 1, .dst_port = 1, .payload = {}};
  UdpDatagram back = decode_udp(encode_udp(d, kSrc, kDst), kSrc, kDst);
  EXPECT_TRUE(back.payload.empty());
}

TEST(UdpCodec, BadLengthRejected) {
  UdpDatagram d{.src_port = 1, .dst_port = 1, .payload = {1, 2, 3, 4}};
  Bytes wire = encode_udp(d, kSrc, kDst);
  wire[4] = 0;
  wire[5] = 3;  // length < header size
  EXPECT_THROW((void)decode_udp(wire, kSrc, kDst), DecodeError);
}

}  // namespace
}  // namespace dnstime::net
