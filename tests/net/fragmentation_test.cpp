#include "net/fragmentation.h"

#include <gtest/gtest.h>

#include <numeric>

namespace dnstime::net {
namespace {

Ipv4Packet packet_of_size(std::size_t payload) {
  Ipv4Packet pkt;
  pkt.src = Ipv4Addr{10, 0, 0, 1};
  pkt.dst = Ipv4Addr{10, 0, 0, 2};
  pkt.id = 77;
  pkt.payload.resize(payload);
  std::iota(pkt.payload.begin(), pkt.payload.end(), 0);
  return pkt;
}

TEST(Fragmentation, SmallPacketPassesThrough) {
  auto frags = fragment(packet_of_size(100), 1500);
  ASSERT_EQ(frags.size(), 1u);
  EXPECT_FALSE(frags[0].is_fragment());
}

TEST(Fragmentation, SplitsAtEightByteBoundary) {
  auto frags = fragment(packet_of_size(1000), 296);
  ASSERT_GE(frags.size(), 2u);
  for (std::size_t i = 0; i + 1 < frags.size(); ++i) {
    EXPECT_EQ(frags[i].payload.size() % 8, 0u);
    EXPECT_TRUE(frags[i].more_fragments);
    EXPECT_LE(frags[i].total_length(), 296u);
  }
  EXPECT_FALSE(frags.back().more_fragments);
}

TEST(Fragmentation, OffsetsAreContiguous) {
  auto frags = fragment(packet_of_size(700), 296);
  std::size_t expect_offset = 0;
  for (const auto& f : frags) {
    EXPECT_EQ(f.frag_offset_bytes(), expect_offset);
    expect_offset += f.payload.size();
  }
  EXPECT_EQ(expect_offset, 700u);
}

TEST(Fragmentation, PreservesIdAndEndpoints) {
  auto frags = fragment(packet_of_size(600), 296);
  for (const auto& f : frags) {
    EXPECT_EQ(f.id, 77);
    EXPECT_EQ(f.src, (Ipv4Addr{10, 0, 0, 1}));
    EXPECT_EQ(f.dst, (Ipv4Addr{10, 0, 0, 2}));
  }
}

TEST(Fragmentation, ReassembledPayloadMatches) {
  Ipv4Packet pkt = packet_of_size(900);
  auto frags = fragment(pkt, 200);
  Bytes joined;
  for (const auto& f : frags) {
    joined.insert(joined.end(), f.payload.begin(), f.payload.end());
  }
  EXPECT_EQ(joined, pkt.payload);
}

TEST(Fragmentation, MinimumMtuWorks) {
  // MTU 68: the paper's predecessor attack needed servers to go this low.
  auto frags = fragment(packet_of_size(500), kMinimumMtu);
  EXPECT_GE(frags.size(), 10u);
  for (const auto& f : frags) EXPECT_LE(f.total_length(), 68u);
}

TEST(Fragmentation, DfPacketTooBigThrows) {
  Ipv4Packet pkt = packet_of_size(2000);
  pkt.dont_fragment = true;
  EXPECT_THROW((void)fragment(pkt, 1500), DecodeError);
}

TEST(Fragmentation, RefusesToRefragment) {
  Ipv4Packet pkt = packet_of_size(100);
  pkt.more_fragments = true;
  EXPECT_THROW((void)fragment(pkt, 68), DecodeError);
}

TEST(Fragmentation, TinyMtuThrows) {
  EXPECT_THROW((void)fragment(packet_of_size(100), 20), DecodeError);
}

}  // namespace
}  // namespace dnstime::net
