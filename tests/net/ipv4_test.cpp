#include "net/ipv4.h"

#include <gtest/gtest.h>

#include "net/checksum.h"

namespace dnstime::net {
namespace {

Ipv4Packet sample() {
  Ipv4Packet pkt;
  pkt.src = Ipv4Addr{10, 0, 0, 1};
  pkt.dst = Ipv4Addr{10, 0, 0, 2};
  pkt.id = 0x1234;
  pkt.ttl = 61;
  pkt.protocol = kProtoUdp;
  pkt.payload = {1, 2, 3, 4, 5};
  return pkt;
}

TEST(Ipv4Codec, RoundTrip) {
  Ipv4Packet pkt = sample();
  Bytes wire = encode(pkt);
  ASSERT_EQ(wire.size(), kIpv4HeaderSize + 5);
  Ipv4Packet back = decode_ipv4(wire);
  EXPECT_EQ(back.src, pkt.src);
  EXPECT_EQ(back.dst, pkt.dst);
  EXPECT_EQ(back.id, pkt.id);
  EXPECT_EQ(back.ttl, pkt.ttl);
  EXPECT_EQ(back.protocol, pkt.protocol);
  EXPECT_EQ(back.payload, pkt.payload);
  EXPECT_FALSE(back.is_fragment());
}

TEST(Ipv4Codec, FragmentFieldsRoundTrip) {
  Ipv4Packet pkt = sample();
  pkt.more_fragments = true;
  pkt.frag_offset_units = 34;
  Bytes wire = encode(pkt);
  Ipv4Packet back = decode_ipv4(wire);
  EXPECT_TRUE(back.more_fragments);
  EXPECT_EQ(back.frag_offset_units, 34);
  EXPECT_TRUE(back.is_fragment());
  EXPECT_EQ(back.frag_offset_bytes(), 34u * 8);
}

TEST(Ipv4Codec, DontFragmentBitRoundTrips) {
  Ipv4Packet pkt = sample();
  pkt.dont_fragment = true;
  EXPECT_TRUE(decode_ipv4(encode(pkt)).dont_fragment);
}

TEST(Ipv4Codec, HeaderChecksumIsValid) {
  Bytes wire = encode(sample());
  EXPECT_EQ(internet_checksum(std::span(wire).subspan(0, kIpv4HeaderSize)), 0);
}

TEST(Ipv4Codec, CorruptedHeaderRejected) {
  Bytes wire = encode(sample());
  wire[8] ^= 0xFF;  // flip TTL without fixing checksum
  EXPECT_THROW((void)decode_ipv4(wire), DecodeError);
}

TEST(Ipv4Codec, TruncatedInputRejected) {
  Bytes wire = encode(sample());
  wire.resize(10);
  EXPECT_THROW((void)decode_ipv4(wire), DecodeError);
}

TEST(Ipv4Codec, NonIpv4Rejected) {
  Bytes wire = encode(sample());
  wire[0] = 0x65;  // version 6
  EXPECT_THROW((void)decode_ipv4(wire), DecodeError);
}

}  // namespace
}  // namespace dnstime::net
