#include "net/netstack.h"

#include <gtest/gtest.h>

namespace dnstime::net {
namespace {

using sim::Duration;

struct TwoHosts {
  sim::EventLoop loop;
  sim::Network net{loop, Rng{1}};
  NetStack a{net, Ipv4Addr{10, 0, 0, 1}, StackConfig{}, Rng{2}};
  NetStack b{net, Ipv4Addr{10, 0, 0, 2}, StackConfig{}, Rng{3}};
};

TEST(NetStack, UdpDelivery) {
  TwoHosts h;
  Bytes got;
  UdpEndpoint from{};
  h.b.bind_udp(53, [&](const UdpEndpoint& f, u16, BufView p) {
    from = f;
    got = p.to_bytes();
  });
  h.a.send_udp(h.b.addr(), 4444, 53, Bytes{1, 2, 3});
  h.loop.run_for(Duration::seconds(1));
  EXPECT_EQ(got, (Bytes{1, 2, 3}));
  EXPECT_EQ(from.addr, h.a.addr());
  EXPECT_EQ(from.port, 4444);
}

TEST(NetStack, LargeDatagramFragmentsAndReassembles) {
  TwoHosts h;
  Bytes got;
  h.b.bind_udp(53, [&](const UdpEndpoint&, u16, BufView p) { got = p.to_bytes(); });
  Bytes payload(4000, 0xAB);
  h.a.send_udp(h.b.addr(), 1, 53, payload);
  h.loop.run_for(Duration::seconds(1));
  EXPECT_EQ(got.size(), 4000u);
  EXPECT_GT(h.b.fragments_rx(), 1u);
}

TEST(NetStack, IcmpFragNeededLowersPathMtu) {
  TwoHosts h;
  EXPECT_EQ(h.a.path_mtu(h.b.addr()), kEthernetMtu);
  // Forged ICMP claiming packets a->b need MTU 296; sent by an off-path
  // attacker c, the netstack accepts it because orig_src matches a.
  NetStack attacker{h.net, Ipv4Addr{6, 6, 6, 6}, StackConfig{}, Rng{4}};
  attacker.send_raw(make_frag_needed_packet(attacker.addr(), h.a.addr(),
                                            h.a.addr(), h.b.addr(), 296));
  h.loop.run_for(Duration::seconds(1));
  EXPECT_EQ(h.a.path_mtu(h.b.addr()), 296);
}

TEST(NetStack, IcmpWithWrongOriginalSourceIgnored) {
  TwoHosts h;
  NetStack attacker{h.net, Ipv4Addr{6, 6, 6, 6}, StackConfig{}, Rng{4}};
  attacker.send_raw(make_frag_needed_packet(
      attacker.addr(), h.a.addr(), Ipv4Addr{9, 9, 9, 9}, h.b.addr(), 296));
  h.loop.run_for(Duration::seconds(1));
  EXPECT_EQ(h.a.path_mtu(h.b.addr()), kEthernetMtu);
}

TEST(NetStack, MinPmtuClampsIcmpRequest) {
  sim::EventLoop loop;
  sim::Network net{loop, Rng{1}};
  StackConfig cfg;
  cfg.min_pmtu = 548;  // stack refuses to fragment below 548
  NetStack a{net, Ipv4Addr{10, 0, 0, 1}, cfg, Rng{2}};
  NetStack attacker{net, Ipv4Addr{6, 6, 6, 6}, StackConfig{}, Rng{4}};
  attacker.send_raw(make_frag_needed_packet(
      attacker.addr(), a.addr(), a.addr(), Ipv4Addr{10, 0, 0, 2}, 68));
  loop.run_for(Duration::seconds(1));
  EXPECT_EQ(a.path_mtu(Ipv4Addr{10, 0, 0, 2}), 548);
}

TEST(NetStack, PmtudDisabledIgnoresIcmp) {
  sim::EventLoop loop;
  sim::Network net{loop, Rng{1}};
  StackConfig cfg;
  cfg.honor_icmp_frag_needed = false;
  NetStack a{net, Ipv4Addr{10, 0, 0, 1}, cfg, Rng{2}};
  NetStack attacker{net, Ipv4Addr{6, 6, 6, 6}, StackConfig{}, Rng{4}};
  attacker.send_raw(make_frag_needed_packet(
      attacker.addr(), a.addr(), a.addr(), Ipv4Addr{10, 0, 0, 2}, 296));
  loop.run_for(Duration::seconds(1));
  EXPECT_EQ(a.path_mtu(Ipv4Addr{10, 0, 0, 2}), kEthernetMtu);
}

TEST(NetStack, FragmentRejectionPolicyDropsFragments) {
  sim::EventLoop loop;
  sim::Network net{loop, Rng{1}};
  StackConfig no_frags;
  no_frags.accept_fragments = false;
  NetStack a{net, Ipv4Addr{10, 0, 0, 1}, StackConfig{}, Rng{2}};
  NetStack b{net, Ipv4Addr{10, 0, 0, 2}, no_frags, Rng{3}};
  bool got = false;
  b.bind_udp(53, [&](const UdpEndpoint&, u16, BufView) { got = true; });
  Bytes payload(4000, 1);
  a.send_udp(b.addr(), 1, 53, payload);
  loop.run_for(Duration::seconds(1));
  EXPECT_FALSE(got);
  EXPECT_GT(b.fragments_dropped(), 0u);
}

TEST(NetStack, TinyFirstFragmentFilter) {
  sim::EventLoop loop;
  sim::Network net{loop, Rng{1}};
  StackConfig filter;
  filter.min_first_fragment_size = 580;  // rejects "tiny"/"small" fragments
  NetStack a{net, Ipv4Addr{10, 0, 0, 1}, StackConfig{}, Rng{2}};
  NetStack b{net, Ipv4Addr{10, 0, 0, 2}, filter, Rng{3}};
  bool got = false;
  b.bind_udp(53, [&](const UdpEndpoint&, u16, BufView) { got = true; });
  a.send_udp_fragmented(b.addr(), 1, 53, Bytes(700, 1), 296);
  loop.run_for(Duration::seconds(1));
  EXPECT_FALSE(got);

  a.send_udp_fragmented(b.addr(), 1, 53, Bytes(1300, 1), 1280);
  loop.run_for(Duration::seconds(1));
  EXPECT_TRUE(got);
}

TEST(NetStack, ForcedFragmentationAlwaysSplits) {
  TwoHosts h;
  Bytes got;
  h.b.bind_udp(53, [&](const UdpEndpoint&, u16, BufView p) { got = p.to_bytes(); });
  // 100-byte payload fits any MTU but must still arrive in >= 2 fragments.
  h.a.send_udp_fragmented(h.b.addr(), 1, 53, Bytes(100, 7), 1500);
  h.loop.run_for(Duration::seconds(1));
  EXPECT_EQ(got.size(), 100u);
  EXPECT_GE(h.b.fragments_rx(), 2u);
}

TEST(NetStack, GlobalSequentialIpidIncrements) {
  TwoHosts h;
  u16 first = h.a.current_ipid();
  h.a.send_udp(h.b.addr(), 1, 2, Bytes{1});
  h.a.send_udp(Ipv4Addr{99, 9, 9, 9}, 1, 2, Bytes{1});  // other destination
  h.a.send_udp(h.b.addr(), 1, 2, Bytes{1});
  EXPECT_EQ(h.a.current_ipid(), first + 3);  // one counter for all dsts
}

TEST(NetStack, SpoofedRawPacketCarriesForgedSource) {
  TwoHosts h;
  UdpEndpoint from{};
  h.b.bind_udp(123, [&](const UdpEndpoint& f, u16, BufView) { from = f; });
  NetStack attacker{h.net, Ipv4Addr{6, 6, 6, 6}, StackConfig{}, Rng{4}};
  Ipv4Packet pkt;
  pkt.src = h.a.addr();  // forged: claims to be host a
  pkt.dst = h.b.addr();
  pkt.protocol = kProtoUdp;
  pkt.payload = encode_udp(UdpDatagram{.src_port = 123, .dst_port = 123,
                                       .payload = Bytes{42}},
                           h.a.addr(), h.b.addr());
  attacker.send_raw(pkt);
  h.loop.run_for(Duration::seconds(1));
  EXPECT_EQ(from.addr, h.a.addr());  // victim believes it came from a
}

}  // namespace
}  // namespace dnstime::net
