#include "net/reassembly.h"

#include <gtest/gtest.h>

#include <numeric>

#include "net/fragmentation.h"

namespace dnstime::net {
namespace {

using sim::Duration;
using sim::Time;

Ipv4Packet packet_of_size(std::size_t n, u16 id = 1) {
  Ipv4Packet pkt;
  pkt.src = Ipv4Addr{10, 0, 0, 1};
  pkt.dst = Ipv4Addr{10, 0, 0, 2};
  pkt.id = id;
  pkt.payload.resize(n);
  std::iota(pkt.payload.begin(), pkt.payload.end(), 0);
  return pkt;
}

TEST(Reassembly, InOrderCompletes) {
  ReassemblyCache cache;
  Ipv4Packet pkt = packet_of_size(600);
  auto frags = fragment(pkt, 296);
  ASSERT_EQ(frags.size(), 3u);
  EXPECT_FALSE(cache.insert(frags[0], Time{}));
  EXPECT_FALSE(cache.insert(frags[1], Time{}));
  auto full = cache.insert(frags[2], Time{});
  ASSERT_TRUE(full);
  EXPECT_EQ(full->payload, pkt.payload);
  EXPECT_EQ(cache.pending_datagrams(), 0u);
}

TEST(Reassembly, OutOfOrderCompletes) {
  ReassemblyCache cache;
  Ipv4Packet pkt = packet_of_size(600);
  auto frags = fragment(pkt, 296);
  EXPECT_FALSE(cache.insert(frags[2], Time{}));
  EXPECT_FALSE(cache.insert(frags[0], Time{}));
  auto full = cache.insert(frags[1], Time{});
  ASSERT_TRUE(full);
  EXPECT_EQ(full->payload, pkt.payload);
}

TEST(Reassembly, FirstArrivalWinsOnDuplicateOffset) {
  // The attack's core property: a planted spoofed fragment takes
  // precedence over the genuine fragment that arrives later.
  ReassemblyCache cache;
  Ipv4Packet pkt = packet_of_size(400);
  auto frags = fragment(pkt, 296);
  ASSERT_EQ(frags.size(), 2u);

  Ipv4Packet spoofed = frags[1];
  std::fill(spoofed.payload.begin(), spoofed.payload.end(), 0xEE);

  EXPECT_FALSE(cache.insert(spoofed, Time{}));      // planted first
  auto full = cache.insert(frags[0], Time{});       // genuine first frag
  ASSERT_TRUE(full);
  // Tail of the reassembled payload is the spoofed content.
  for (std::size_t i = frags[0].payload.size(); i < full->payload.size();
       ++i) {
    EXPECT_EQ(full->payload[i], 0xEE);
  }
  // The genuine second fragment now starts a fresh (never-completing)
  // entry.
  EXPECT_FALSE(cache.insert(frags[1], Time{}));
  EXPECT_EQ(cache.pending_datagrams(), 1u);
}

TEST(Reassembly, DifferentIdsDoNotMix) {
  ReassemblyCache cache;
  auto frags_a = fragment(packet_of_size(400, 1), 296);
  auto frags_b = fragment(packet_of_size(400, 2), 296);
  EXPECT_FALSE(cache.insert(frags_a[0], Time{}));
  EXPECT_FALSE(cache.insert(frags_b[1], Time{}));
  EXPECT_EQ(cache.pending_datagrams(), 2u);
}

TEST(Reassembly, TimeoutExpiresEntries) {
  ReassemblyCache cache(ReassemblyPolicy{.timeout = Duration::seconds(30)});
  auto frags = fragment(packet_of_size(400), 296);
  EXPECT_FALSE(cache.insert(frags[1], Time{}));
  cache.expire(Time{} + Duration::seconds(29));
  EXPECT_EQ(cache.pending_datagrams(), 1u);
  cache.expire(Time{} + Duration::seconds(30));
  EXPECT_EQ(cache.pending_datagrams(), 0u);
  EXPECT_EQ(cache.expired(), 1u);
  // After expiry the remaining genuine fragment cannot complete.
  EXPECT_FALSE(cache.insert(frags[0], Time{} + Duration::seconds(31)));
}

TEST(Reassembly, PerPairCapBoundsSprayWidth) {
  // Linux caps 64 concurrently cached datagrams per endpoint pair: an
  // attacker spraying fragments with distinct IPIDs hits this wall.
  ReassemblyCache cache(
      ReassemblyPolicy{.max_datagrams_per_pair = 64});
  auto base = fragment(packet_of_size(400), 296);
  for (u16 id = 0; id < 80; ++id) {
    Ipv4Packet f = base[1];
    f.id = id;
    (void)cache.insert(f, Time{});
  }
  EXPECT_EQ(cache.pending_datagrams(), 64u);
  EXPECT_EQ(cache.evicted_overflow(), 16u);
}

TEST(Reassembly, WindowsPolicyAllows100) {
  ReassemblyCache cache(
      ReassemblyPolicy{.max_datagrams_per_pair = 100});
  auto base = fragment(packet_of_size(400), 296);
  for (u16 id = 0; id < 120; ++id) {
    Ipv4Packet f = base[1];
    f.id = id;
    (void)cache.insert(f, Time{});
  }
  EXPECT_EQ(cache.pending_datagrams(), 100u);
}

TEST(Reassembly, PairCapSlotsFreeOnExpiryAndCompletion) {
  // The per-pair cap is enforced with an incrementally-maintained counter
  // (the old full-cache scan made a fragment spray O(n²)); this pins the
  // counter to the cache contents across every path that removes entries.
  ReassemblyCache cache(ReassemblyPolicy{
      .timeout = Duration::seconds(30), .max_datagrams_per_pair = 4});
  auto base = fragment(packet_of_size(400), 296);

  // Fill the pair to its cap with incomplete datagrams.
  for (u16 id = 0; id < 6; ++id) {
    Ipv4Packet f = base[1];
    f.id = id;
    EXPECT_FALSE(cache.insert(f, Time{}));
  }
  EXPECT_EQ(cache.pending_datagrams(), 4u);
  EXPECT_EQ(cache.evicted_overflow(), 2u);

  // Expiry must release the slots, not just the entries.
  cache.expire(Time{} + Duration::seconds(30));
  EXPECT_EQ(cache.pending_datagrams(), 0u);
  EXPECT_EQ(cache.expired(), 4u);
  for (u16 id = 10; id < 14; ++id) {
    Ipv4Packet f = base[1];
    f.id = id;
    EXPECT_FALSE(cache.insert(f, Time{} + Duration::seconds(31)));
  }
  EXPECT_EQ(cache.pending_datagrams(), 4u);
  EXPECT_EQ(cache.evicted_overflow(), 2u);  // cap free again: no new evictions

  // Completion must release a slot too: finish one datagram, and the freed
  // slot accepts a fresh incomplete datagram without an overflow eviction.
  Time later = Time{} + Duration::seconds(62);
  cache.expire(later);  // clean slate
  auto frags = fragment(packet_of_size(400, 99), 296);
  EXPECT_FALSE(cache.insert(frags[0], later));
  ASSERT_TRUE(cache.insert(frags[1], later));
  EXPECT_EQ(cache.pending_datagrams(), 0u);
  Ipv4Packet fresh = base[1];
  fresh.id = 77;
  EXPECT_FALSE(cache.insert(fresh, later));
  EXPECT_EQ(cache.pending_datagrams(), 1u);
  EXPECT_EQ(cache.evicted_overflow(), 2u);
}

TEST(Reassembly, PairCountsAreIndependentPerPair) {
  ReassemblyCache cache(ReassemblyPolicy{.max_datagrams_per_pair = 2});
  auto base = fragment(packet_of_size(400), 296);
  for (u16 id = 0; id < 4; ++id) {
    Ipv4Packet f = base[1];
    f.id = id;
    (void)cache.insert(f, Time{});
  }
  EXPECT_EQ(cache.pending_datagrams(), 2u);  // pair A at cap
  // A different source address is a different pair with its own budget.
  for (u16 id = 0; id < 2; ++id) {
    Ipv4Packet f = base[1];
    f.src = Ipv4Addr{10, 0, 0, 9};
    f.id = id;
    EXPECT_FALSE(cache.insert(f, Time{}));
  }
  EXPECT_EQ(cache.pending_datagrams(), 4u);
  EXPECT_EQ(cache.evicted_overflow(), 2u);
}

TEST(Reassembly, HoleBlocksCompletion) {
  ReassemblyCache cache;
  auto frags = fragment(packet_of_size(900), 296);
  ASSERT_EQ(frags.size(), 4u);
  EXPECT_FALSE(cache.insert(frags[0], Time{}));
  EXPECT_FALSE(cache.insert(frags[3], Time{}));  // hole at frags[1..2]
  EXPECT_FALSE(cache.insert(frags[2], Time{}));  // hole at frags[1]
  EXPECT_EQ(cache.pending_datagrams(), 1u);
}

}  // namespace
}  // namespace dnstime::net
