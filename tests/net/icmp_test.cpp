#include "net/icmp.h"

#include <gtest/gtest.h>

#include "net/checksum.h"

namespace dnstime::net {
namespace {

TEST(IcmpCodec, FragNeededRoundTrip) {
  IcmpFragNeeded msg{.mtu = 296,
                     .orig_src = Ipv4Addr{10, 0, 0, 1},
                     .orig_dst = Ipv4Addr{10, 0, 0, 2},
                     .orig_protocol = kProtoUdp};
  Bytes wire = encode_icmp_frag_needed(msg);
  IcmpFragNeeded back = decode_icmp_frag_needed(wire);
  EXPECT_EQ(back.mtu, 296);
  EXPECT_EQ(back.orig_src, msg.orig_src);
  EXPECT_EQ(back.orig_dst, msg.orig_dst);
  EXPECT_EQ(back.orig_protocol, kProtoUdp);
}

TEST(IcmpCodec, ChecksumDetectsCorruption) {
  Bytes wire = encode_icmp_frag_needed(
      IcmpFragNeeded{.mtu = 68, .orig_src = Ipv4Addr{1, 1, 1, 1},
                     .orig_dst = Ipv4Addr{2, 2, 2, 2}});
  wire[6] ^= 0x01;
  EXPECT_THROW((void)decode_icmp_frag_needed(wire), DecodeError);
}

TEST(IcmpCodec, RejectsOtherTypes) {
  Bytes wire = encode_icmp_frag_needed(
      IcmpFragNeeded{.mtu = 68, .orig_src = Ipv4Addr{1, 1, 1, 1},
                     .orig_dst = Ipv4Addr{2, 2, 2, 2}});
  wire[0] = 8;  // echo request
  // Fix checksum so the type check (not the checksum) rejects it.
  wire[2] = 0;
  wire[3] = 0;
  u16 csum = internet_checksum(wire);
  wire[2] = static_cast<u8>(csum >> 8);
  wire[3] = static_cast<u8>(csum);
  EXPECT_THROW((void)decode_icmp_frag_needed(wire), DecodeError);
}

TEST(IcmpCodec, MakeFragNeededPacketIsWellFormed) {
  Ipv4Packet pkt = make_frag_needed_packet(
      Ipv4Addr{9, 9, 9, 9}, Ipv4Addr{5, 5, 5, 5}, Ipv4Addr{5, 5, 5, 5},
      Ipv4Addr{6, 6, 6, 6}, 548);
  EXPECT_EQ(pkt.protocol, kProtoIcmp);
  EXPECT_EQ(pkt.dst, (Ipv4Addr{5, 5, 5, 5}));
  IcmpFragNeeded msg = decode_icmp_frag_needed(pkt.payload);
  EXPECT_EQ(msg.mtu, 548);
  EXPECT_EQ(msg.orig_dst, (Ipv4Addr{6, 6, 6, 6}));
}

}  // namespace
}  // namespace dnstime::net
