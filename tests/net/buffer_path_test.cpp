// Property tests for the pooled zero-copy packet path against the frozen
// pre-refactor copy path (bench/legacy_packet_path.h), plus the pool-leak
// instrumentation contract: every PacketBuf returns to its pool at trial
// teardown.
#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "bench/legacy_packet_path.h"
#include "common/buffer.h"
#include "common/origin.h"
#include "common/rng.h"
#include "net/fragmentation.h"
#include "net/netstack.h"
#include "net/reassembly.h"
#include "net/udp.h"
#include "obs/provenance.h"
#include "sim/event_loop.h"
#include "sim/network.h"

namespace dnstime::net {
namespace {

using sim::Duration;

Bytes random_payload(Rng& rng, std::size_t n) {
  Bytes b(n);
  for (auto& v : b) v = static_cast<u8>(rng.uniform(0, 255));
  return b;
}

/// fragment() then reassemble in a shuffled arrival order, on both paths;
/// assert byte-equality with each other and with the original payload.
TEST(BufferPathProperty, FragmentReassembleRoundTripMatchesLegacyPath) {
  Rng rng{0xF00D};
  const u16 mtus[] = {68, 296, 576, 1500, 9000};
  // Sizes 0..64 KiB: edge cases plus random fill. An IPv4 datagram's total
  // length caps at 65535, so the largest payload is 65515.
  std::vector<std::size_t> sizes = {0,   1,    7,    8,    9,   47,  48,
                                    276, 277,  556,  1480, 1481, 4096,
                                    65515};
  for (int i = 0; i < 40; ++i) {
    sizes.push_back(static_cast<std::size_t>(rng.uniform(0, 16384)));
  }
  for (std::size_t size : sizes) {
    for (u16 mtu : mtus) {
      Bytes payload = random_payload(rng, size);

      Ipv4Packet pkt;
      pkt.src = Ipv4Addr{198, 51, 100, 53};
      pkt.dst = Ipv4Addr{10, 53, 0, 1};
      pkt.id = static_cast<u16>(rng.next_u16());
      pkt.payload = PacketBuf::copy_of(payload);

      bench_legacy::Ipv4Packet old_pkt;
      old_pkt.src = pkt.src;
      old_pkt.dst = pkt.dst;
      old_pkt.id = pkt.id;
      old_pkt.payload = payload;

      auto frags = fragment(pkt, mtu);
      auto old_frags = bench_legacy::fragment(old_pkt, mtu);
      ASSERT_EQ(frags.size(), old_frags.size()) << size << "@" << mtu;

      // Same shuffled arrival order on both sides.
      std::vector<std::size_t> order(frags.size());
      for (std::size_t k = 0; k < order.size(); ++k) order[k] = k;
      rng.shuffle(order);

      if (frags.size() == 1 && !frags[0].is_fragment()) {
        ASSERT_EQ(frags[0].payload, old_frags[0].payload);
        continue;
      }

      ReassemblyCache cache;
      bench_legacy::ReassemblyCache old_cache;
      std::optional<Ipv4Packet> full;
      std::optional<bench_legacy::Ipv4Packet> old_full;
      for (std::size_t k : order) {
        auto done = cache.insert(frags[k], sim::Time{});
        auto old_done = old_cache.insert(old_frags[k], sim::Time{});
        ASSERT_EQ(done.has_value(), old_done.has_value());
        if (done) full = std::move(done);
        if (old_done) old_full = std::move(old_done);
      }
      ASSERT_TRUE(full.has_value()) << size << "@" << mtu;
      ASSERT_TRUE(old_full.has_value());
      // Byte-equality: new path == old copy path == original payload.
      ASSERT_EQ(full->payload, old_full->payload) << size << "@" << mtu;
      ASSERT_EQ(full->payload, payload) << size << "@" << mtu;
      // Fragment payloads are aliasing slices; make sure reassembly did not
      // mutate the parent datagram through them.
      ASSERT_EQ(pkt.payload, payload);
    }
  }
}

/// Overlapping and duplicate crafted fragments resolve identically on both
/// paths (first arrival wins; ascending-offset copy order).
TEST(BufferPathProperty, CraftedOverlapsMatchLegacyPath) {
  Rng rng{0xBEEF};
  for (int iter = 0; iter < 200; ++iter) {
    std::size_t nfrags = 2 + rng.uniform(0, 3);
    std::vector<std::pair<u16, Bytes>> parts;  // offset-units, bytes
    std::size_t last_end_units = 0;
    for (std::size_t f = 0; f + 1 < nfrags; ++f) {
      // delta in {-1, 0, +1}: overlap, contiguous, or hole.
      std::size_t base = last_end_units + rng.uniform(0, 2);
      u16 off = static_cast<u16>(base == 0 ? 0 : base - 1);
      std::size_t len8 = 1 + rng.uniform(0, 3);
      parts.emplace_back(off, random_payload(rng, len8 * 8));
      last_end_units = std::max<std::size_t>(last_end_units, off + len8);
    }
    // The MF=0 fragment sometimes lands *inside* earlier coverage so a part
    // extends past the datagram end (the truncation path).
    std::size_t final_base = last_end_units + rng.uniform(0, 2);
    u16 final_off = static_cast<u16>(final_base == 0 ? 0 : final_base - 1);
    parts.emplace_back(final_off, random_payload(rng, rng.uniform(1, 24)));

    ReassemblyCache cache;
    bench_legacy::ReassemblyCache old_cache;
    std::optional<Ipv4Packet> full;
    std::optional<bench_legacy::Ipv4Packet> old_full;
    for (std::size_t f = 0; f < parts.size(); ++f) {
      Ipv4Packet frag;
      frag.src = Ipv4Addr{1, 2, 3, 4};
      frag.dst = Ipv4Addr{5, 6, 7, 8};
      frag.id = 99;
      frag.frag_offset_units = parts[f].first;
      frag.more_fragments = f + 1 < parts.size();
      frag.payload = PacketBuf::copy_of(parts[f].second);

      bench_legacy::Ipv4Packet old_frag;
      old_frag.src = frag.src;
      old_frag.dst = frag.dst;
      old_frag.id = frag.id;
      old_frag.frag_offset_units = frag.frag_offset_units;
      old_frag.more_fragments = frag.more_fragments;
      old_frag.payload = parts[f].second;

      auto done = cache.insert(frag, sim::Time{});
      auto old_done = old_cache.insert(old_frag, sim::Time{});
      ASSERT_EQ(done.has_value(), old_done.has_value()) << "iter " << iter;
      if (done) full = std::move(done);
      if (old_done) old_full = std::move(old_done);
    }
    if (full.has_value()) {
      ASSERT_TRUE(old_full.has_value());
      ASSERT_EQ(full->payload, old_full->payload) << "iter " << iter;
    } else {
      ASSERT_FALSE(old_full.has_value());
    }
  }
}

/// Pool-leak instrumentation: run a whole "trial" (two stacks exchanging
/// fragmented datagrams over the simulated network, including planted
/// fragments that expire) and require every PacketBuf to have returned to
/// the pool at teardown.
TEST(BufferPool, PacketPathReturnsEveryBufferAtTrialTeardown) {
  BufferPool& pool = BufferPool::local();
  const u64 before = pool.outstanding();
  {
    sim::EventLoop loop;
    sim::Network net(loop, Rng{7});
    StackConfig cfg;
    NetStack a(net, Ipv4Addr{10, 0, 0, 1}, cfg, Rng{1});
    NetStack b(net, Ipv4Addr{10, 0, 0, 2}, cfg, Rng{2});

    u64 got = 0;
    b.bind_udp(53, [&](const UdpEndpoint&, u16, BufView payload) {
      got += payload.size();
    });
    for (int i = 0; i < 50; ++i) {
      a.send_udp(b.addr(), 4444, 53, Bytes(2000, static_cast<u8>(i)));
      a.send_udp_fragmented(b.addr(), 4444, 53, Bytes(256, 0xAB), 96);
    }
    // Plant an incomplete fragment that must be freed by cache expiry.
    Ipv4Packet orphan;
    orphan.src = Ipv4Addr{6, 6, 6, 6};
    orphan.dst = b.addr();
    orphan.id = 0x4242;
    orphan.frag_offset_units = 8;
    orphan.more_fragments = true;
    orphan.payload = Bytes(64, 0xEE);
    a.send_raw(std::move(orphan));

    loop.run_for(sim::Duration::seconds(60));  // past the reassembly timeout
    ASSERT_GT(got, 0u);
    ASSERT_GT(b.fragments_rx(), 0u);
  }
  // Trial teardown: every packet buffer is back in the pool.
  EXPECT_EQ(pool.outstanding(), before);
}

/// Provenance: a stamp applied to the parent datagram survives
/// fragmentation (every fragment is an aliasing slice carrying it) and
/// reassembly in a shuffled arrival order, gaining only the reassembled
/// flag.
TEST(BufferPathProvenance, OriginSurvivesFragmentReassembleRoundTrip) {
  Rng rng{0xC0FFEE};
  obs::FlightRecorder flight;
  flight.set_meta("test/prov-roundtrip", 1, 0, 0x1234);
  obs::ScopedFlightRecorder install(&flight);

  const u16 mtus[] = {68, 296, 576};
  for (u16 mtu : mtus) {
    Ipv4Packet pkt;
    pkt.src = Ipv4Addr{198, 51, 100, 53};
    pkt.dst = Ipv4Addr{10, 53, 0, 1};
    pkt.id = static_cast<u16>(mtu);
    pkt.payload = PacketBuf::copy_of(random_payload(rng, 2000));
    const Origin stamped =
        flight.stamp(/*ts_ns=*/42, OriginModule::kNameserver);
    ASSERT_NE(stamped.seq, 0u);
    pkt.payload.set_origin(stamped);

    auto frags = fragment(pkt, mtu);
    ASSERT_GT(frags.size(), 1u) << mtu;
    for (const Ipv4Packet& f : frags) {
      EXPECT_EQ(f.payload.origin(), stamped) << mtu;
    }

    std::vector<std::size_t> order(frags.size());
    for (std::size_t k = 0; k < order.size(); ++k) order[k] = k;
    rng.shuffle(order);

    ReassemblyCache cache;
    std::optional<Ipv4Packet> full;
    for (std::size_t k : order) {
      if (auto done = cache.insert(frags[k], sim::Time{})) {
        full = std::move(done);
      }
    }
    ASSERT_TRUE(full.has_value()) << mtu;
    const Origin& merged = full->payload.origin();
    EXPECT_EQ(merged.seq, stamped.seq) << mtu;
    EXPECT_EQ(merged.module, OriginModule::kNameserver) << mtu;
    EXPECT_EQ(merged.ts_ns, stamped.ts_ns) << mtu;
    EXPECT_TRUE(merged.reassembled()) << mtu;
    EXPECT_FALSE(merged.spoofed()) << mtu;
  }
  // The recorder saw one kReasmComplete event per mtu and every stamp.
  EXPECT_EQ(flight.stamps(), 3u);
}

/// The paper's contamination semantics: when one part of a reassembled
/// datagram was spoofed, the merged stamp is the spoofed part's — the
/// poisoned payload is attributable to the attacker's injection even
/// though the first fragment was legitimate.
TEST(BufferPathProvenance, SpoofedFragmentDominatesMergedOrigin) {
  obs::FlightRecorder flight;
  flight.set_meta("test/prov-spoofed", 1, 0, 0x5678);
  obs::ScopedFlightRecorder install(&flight);

  const Origin legit = flight.stamp(10, OriginModule::kNameserver);
  const Origin spoofed =
      flight.stamp(20, OriginModule::kAttacker, Origin::kSpoofed);
  ASSERT_TRUE(spoofed.spoofed());

  auto make_frag = [](u16 offset_units, bool more, std::size_t len,
                      const Origin& o) {
    Ipv4Packet frag;
    frag.src = Ipv4Addr{192, 0, 2, 1};
    frag.dst = Ipv4Addr{10, 53, 0, 1};
    frag.id = 7;
    frag.frag_offset_units = offset_units;
    frag.more_fragments = more;
    frag.payload = PacketBuf::copy_of(Bytes(len, 0xAB));
    frag.payload.set_origin(o);
    return frag;
  };

  ReassemblyCache cache;
  ASSERT_FALSE(
      cache.insert(make_frag(0, true, 16, legit), sim::Time{}).has_value());
  auto full =
      cache.insert(make_frag(2, false, 16, spoofed), sim::Time{});
  ASSERT_TRUE(full.has_value());
  const Origin& merged = full->payload.origin();
  EXPECT_EQ(merged.seq, spoofed.seq);
  EXPECT_EQ(merged.module, OriginModule::kAttacker);
  EXPECT_TRUE(merged.spoofed());
  EXPECT_TRUE(merged.reassembled());
}

/// End-to-end through NetStack: with a recorder installed and the stack
/// tagged with a module, a fragmented send_udp arrives at the receiver's
/// handler still carrying the sender's stamp (plus the reassembled flag),
/// and the recorder noted the completed reassembly.
TEST(BufferPathProvenance, StampSurvivesNetstackDelivery) {
  obs::FlightRecorder flight;
  flight.set_meta("test/prov-netstack", 1, 0, 0x9abc);
  obs::ScopedFlightRecorder install(&flight);

  sim::EventLoop loop;
  sim::Network net(loop, Rng{7});
  StackConfig sender_cfg;
  sender_cfg.origin_module = OriginModule::kNameserver;
  NetStack a(net, Ipv4Addr{10, 0, 0, 1}, sender_cfg, Rng{1});
  NetStack b(net, Ipv4Addr{10, 0, 0, 2}, StackConfig{}, Rng{2});

  Origin seen;
  b.bind_udp(53, [&](const UdpEndpoint&, u16, BufView payload) {
    seen = payload.origin();
  });
  a.send_udp(b.addr(), 4444, 53, Bytes(3000, 0xCD));  // > MTU: fragments
  loop.run_for(Duration::seconds(5));

  EXPECT_NE(seen.seq, 0u);
  EXPECT_EQ(seen.module, OriginModule::kNameserver);
  EXPECT_TRUE(seen.reassembled());
  EXPECT_FALSE(seen.spoofed());
  EXPECT_GT(flight.stamps(), 0u);
  // The completed reassembly was recorded; nothing was spoofed, so the
  // contamination chain stage stayed untouched.
  EXPECT_GT(flight.recorded(), 0u);
  EXPECT_EQ(flight.chain(obs::ChainStage::kReasmSpoofed).count, 0u);
}

}  // namespace
}  // namespace dnstime::net
