// Deterministic replays of hostile reassembly inputs from the
// fuzz_reassembly harness (fuzz/corpus/reassembly). These overlap with the
// crafted-fragment property tests in buffer_path_test.cpp but pin the
// exact adversarial shapes the fuzzer exercises, against the raw cache.
#include <gtest/gtest.h>

#include "net/reassembly.h"

namespace dnstime::net {
namespace {

Ipv4Packet frag(u16 id, u16 offset_units, bool more, std::size_t len,
                u8 fill) {
  Ipv4Packet p;
  p.src = Ipv4Addr{0x0A000001};
  p.dst = Ipv4Addr{0xC0A80001};
  p.protocol = kProtoUdp;
  p.id = id;
  p.frag_offset_units = offset_units;
  p.more_fragments = more;
  p.payload = PacketBuf{Bytes(len, fill)};
  return p;
}

// corpus seed "out-of-range": a crafted part starting past the end
// declared by the MF=0 fragment. The coverage check sees a hole between
// the genuine end and the stray part, so the datagram never completes —
// it wedges until expiry. Crucially the assembler is never reached (the
// pre-PR5 copy path underflowed `total - start` on this shape and wrote
// out of bounds).
TEST(ReassemblyFuzzRegression, PartStartingPastDatagramEndWedgesDatagram) {
  ReassemblyCache cache;
  sim::Time now;
  // Spray part first (first arrival wins), then the genuine tiny datagram.
  EXPECT_FALSE(cache.insert(frag(5, 100, true, 32, 0xEE), now).has_value());
  EXPECT_FALSE(cache.insert(frag(5, 0, false, 8, 0x11), now).has_value());
  EXPECT_EQ(cache.pending_datagrams(), 1u);
  // The wedged datagram drains on expiry, not by completion.
  cache.expire(now + sim::Duration::seconds(62));
  EXPECT_EQ(cache.pending_datagrams(), 0u);
  EXPECT_EQ(cache.completed(), 0u);
  EXPECT_EQ(cache.expired(), 1u);
}

// A part that *starts* inside the declared total but extends past it (an
// overlap off the end of the datagram) is clipped by the assembler rather
// than widening the buffer: this is the exact `min(part, total - start)`
// bound whose absence was the out-of-bounds write.
TEST(ReassemblyFuzzRegression, PartExtendingPastDeclaredEndIsClipped) {
  ReassemblyCache cache;
  sim::Time now;
  EXPECT_FALSE(cache.insert(frag(9, 0, true, 16, 0xEE), now).has_value());
  auto done = cache.insert(frag(9, 1, false, 0, 0x00), now);
  ASSERT_TRUE(done.has_value());
  // MF=0 at offset 8 with an empty payload declares total = 8; the
  // 16-byte part at offset 0 must contribute only its first 8 bytes.
  ASSERT_EQ(done->payload.size(), 8u);
  for (std::size_t i = 0; i < 8; ++i) EXPECT_EQ(done->payload.data()[i], 0xEE);
}

// corpus seed "overlap": a spoofed fragment overlapping the genuine one at
// a different offset. Overlaps resolve in ascending-offset order and the
// assembled size stays exactly the declared total.
TEST(ReassemblyFuzzRegression, OverlappingSprayStaysInBounds) {
  ReassemblyCache cache;
  sim::Time now;
  EXPECT_FALSE(cache.insert(frag(7, 0, true, 24, 0xAA), now).has_value());
  EXPECT_FALSE(cache.insert(frag(7, 1, true, 16, 0xBB), now).has_value());
  auto done = cache.insert(frag(7, 3, false, 8, 0xCC), now);
  ASSERT_TRUE(done.has_value());
  ASSERT_EQ(done->payload.size(), 32u);  // 3*8 + 8 declared by MF=0
  // Ascending offset order: the offset-1 part overwrites [8,24), the
  // offset-3 part overwrites [24,32).
  const u8* p = done->payload.data();
  for (std::size_t i = 0; i < 8; ++i) EXPECT_EQ(p[i], 0xAA) << i;
  for (std::size_t i = 8; i < 24; ++i) EXPECT_EQ(p[i], 0xBB) << i;
  for (std::size_t i = 24; i < 32; ++i) EXPECT_EQ(p[i], 0xCC) << i;
}

// corpus seed "spray-expire": an IPID spray against one endpoint pair must
// saturate at the policy cap and drain completely on expiry.
TEST(ReassemblyFuzzRegression, IpidSprayCapsAndDrains) {
  ReassemblyPolicy policy;
  policy.max_datagrams_per_pair = 8;
  ReassemblyCache cache(policy);
  sim::Time now;
  for (u16 id = 0; id < 12; ++id) {
    (void)cache.insert(frag(id, 64, true, 8, 0xDD), now);
  }
  EXPECT_EQ(cache.pending_datagrams(), 8u);
  EXPECT_EQ(cache.evicted_overflow(), 4u);
  cache.expire(now + sim::Duration::seconds(62));
  EXPECT_EQ(cache.pending_datagrams(), 0u);
  EXPECT_EQ(cache.expired(), 8u);
  // A fresh spray after the drain must get fresh slots (pair counts were
  // kept in sync by the expiry sweep).
  (void)cache.insert(frag(99, 0, true, 8, 0x01), now);
  EXPECT_EQ(cache.pending_datagrams(), 1u);
}

// A datagram declared empty by its only fragment (MF=0, offset 0, len 0)
// completes with a zero-byte payload instead of tripping the assembler.
TEST(ReassemblyFuzzRegression, EmptyDatagramCompletes) {
  ReassemblyCache cache;
  auto done = cache.insert(frag(1, 0, false, 0, 0x00), sim::Time{});
  ASSERT_TRUE(done.has_value());
  EXPECT_EQ(done->payload.size(), 0u);
}

}  // namespace
}  // namespace dnstime::net
