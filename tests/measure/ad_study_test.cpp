#include "measure/ad_study.h"

#include <gtest/gtest.h>

namespace dnstime::measure {
namespace {

AdStudyResult small_study() {
  AdStudyConfig cfg;
  // Scale the regional populations down 8x for test speed.
  cfg.population.region_counts = {
      {Region::kAsia, 400},          {Region::kAfrica, 40},
      {Region::kEurope, 175},        {Region::kNorthAmerica, 290},
      {Region::kLatinAmerica, 105},
  };
  return run_ad_study(cfg);
}

TEST(AdStudy, FiltersInvalidClients) {
  auto result = small_study();
  EXPECT_GT(result.clients_total, 0u);
  EXPECT_LT(result.clients_valid, result.clients_total);
  EXPECT_GT(result.clients_valid, result.clients_total * 8 / 10);
}

TEST(AdStudy, FragmentAcceptanceMonotoneInSize) {
  auto result = small_study();
  // tiny <= small <= medium <= big acceptance (monotone threshold model).
  EXPECT_LE(result.all.accepts_tiny, result.accepts_small);
  EXPECT_LE(result.accepts_small, result.accepts_medium);
  EXPECT_LE(result.accepts_medium, result.accepts_big);
  EXPECT_LE(result.all.accepts_tiny, result.all.accepts_any);
}

TEST(AdStudy, GoogleClientsRejectTinyFragments) {
  auto result = small_study();
  // Removing Google raises tiny acceptance (Table V: 64% -> 68%).
  EXPECT_GT(result.without_google.tiny_fraction(),
            result.all.tiny_fraction());
}

TEST(AdStudy, DnssecValidationInPaperRange) {
  auto result = small_study();
  for (int r = 0; r < 5; ++r) {
    double v = result.dnssec_validation_fraction(r);
    EXPECT_GT(v, 0.10) << "region " << r;
    EXPECT_LT(v, 0.40) << "region " << r;
  }
}

TEST(AdStudy, MajorityAcceptsSomeFragmentSize) {
  auto result = small_study();
  EXPECT_GT(result.all.any_fraction(), 0.75);
  EXPECT_LT(result.all.any_fraction(), 0.97);
}

}  // namespace
}  // namespace dnstime::measure
