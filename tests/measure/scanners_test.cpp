// Measurement-tool tests at reduced population sizes: the scans must
// recover the planted population fractions through their black-box
// methodologies.
#include <gtest/gtest.h>

#include "measure/cache_probe.h"
#include "measure/frag_scanner.h"
#include "measure/ratelimit_scanner.h"
#include "measure/shared_resolver.h"
#include "measure/timing_probe.h"

namespace dnstime::measure {
namespace {

TEST(RateLimitScanner, RecoversPlantedFractions) {
  RateLimitScanConfig cfg;
  cfg.servers = 400;
  auto result = scan_pool_rate_limiting(cfg);
  EXPECT_EQ(result.servers, 400u);
  // Within a few points of the planted 38% / 33% / 5.3%.
  EXPECT_NEAR(result.rate_limit_fraction(), 0.38, 0.08);
  EXPECT_NEAR(result.kod_fraction(), 0.33, 0.08);
  EXPECT_NEAR(result.open_config_fraction(), 0.053, 0.04);
  // The scan is a (slightly noisy) estimator of the truth.
  EXPECT_NEAR(static_cast<double>(result.rate_limiting_servers),
              static_cast<double>(result.truth_rate_limiting), 40.0);
}

TEST(RateLimitScanner, NoRateLimitingDetectedWhenAbsent) {
  RateLimitScanConfig cfg;
  cfg.servers = 100;
  cfg.population.rate_limit_fraction = 0.0;
  cfg.population.open_config_fraction = 0.0;
  auto result = scan_pool_rate_limiting(cfg);
  EXPECT_EQ(result.kod_servers, 0u);
  EXPECT_EQ(result.rate_limiting_servers, 0u);
  EXPECT_EQ(result.open_config_servers, 0u);
}

TEST(FragScanner, RecoversFragmentationCdf) {
  FragScanConfig cfg;
  cfg.domains = 1500;
  auto result = scan_domain_fragmentation(cfg);
  EXPECT_NEAR(result.vulnerable_fraction(), 0.0766, 0.025);
  // Fig. 5 knees among the vulnerable.
  EXPECT_NEAR(result.fraction_fragmenting_leq(548), 0.832, 0.12);
  EXPECT_NEAR(result.fraction_fragmenting_leq(292), 0.0705, 0.06);
  EXPECT_DOUBLE_EQ(result.fraction_fragmenting_leq(1500), 1.0);
}

TEST(FragScanner, PoolNameserversDeterministic) {
  auto result = scan_pool_nameservers();
  EXPECT_EQ(result.nameservers, 30u);
  EXPECT_EQ(result.fragment_below_548, 16u);
  EXPECT_EQ(result.dnssec, 0u);
}

TEST(CacheProbe, RecoversCachedFractions) {
  CacheProbeConfig cfg;
  cfg.resolvers = 800;
  auto result = probe_open_resolvers(cfg);
  EXPECT_GT(result.verified, 600u);  // ~90% pass RD verification
  ASSERT_EQ(result.rows.size(), 6u);
  EXPECT_NEAR(result.rows[0].cached_fraction(), 0.5828, 0.07);  // NS
  EXPECT_NEAR(result.rows[1].cached_fraction(), 0.6941, 0.07);  // A
  // Broken-RD resolvers never enter the statistics.
  EXPECT_LT(result.verified, result.probed);
}

TEST(CacheProbe, TtlsRoughlyUniform) {
  CacheProbeConfig cfg;
  cfg.resolvers = 1500;
  auto result = probe_open_resolvers(cfg);
  ASSERT_GT(result.ttl_histogram.total(), 500u);
  // All observed TTLs live in [0, 150); occupancy roughly even.
  std::size_t in_range = 0;
  std::size_t max_bin = 0, min_bin = SIZE_MAX;
  for (std::size_t b = 0; b < result.ttl_histogram.bins(); ++b) {
    if (result.ttl_histogram.bin_hi(b) <= 150.0) {
      in_range += result.ttl_histogram.count(b);
      max_bin = std::max(max_bin, result.ttl_histogram.count(b));
      min_bin = std::min(min_bin, result.ttl_histogram.count(b));
    }
  }
  EXPECT_EQ(in_range, result.ttl_histogram.total());
  EXPECT_LT(max_bin, 3 * std::max<std::size_t>(min_bin, 1));
}

TEST(SharedResolver, RecoversTriggerableFractions) {
  SharedResolverScanConfig cfg;
  cfg.population.web_resolvers = 600;
  auto result = discover_shared_resolvers(cfg);
  EXPECT_EQ(result.web_resolvers, 600u);
  EXPECT_NEAR(result.triggerable_fraction(), 0.138, 0.05);
  EXPECT_GT(result.smtp_shared, result.open);  // SMTP path dominates
}

TEST(TimingProbe, NoUsableThreshold) {
  TimingProbeConfig cfg;
  cfg.resolvers = 800;
  auto result = run_timing_probe(cfg);
  EXPECT_GT(result.deltas.total(), 700u);
  // The paper's negative result: classification is imperfect, far from
  // clean separation...
  EXPECT_LT(result.best_threshold_accuracy(), 0.99);
  // ...but better than chance (there IS some signal, just unusable).
  EXPECT_GT(result.best_threshold_accuracy(), 0.6);
}

}  // namespace
}  // namespace dnstime::measure
