#include "analysis/probability.h"

#include <gtest/gtest.h>

namespace dnstime::analysis {
namespace {

TEST(Probability, BinomialCoefficients) {
  EXPECT_DOUBLE_EQ(binomial_coefficient(6, 0), 1.0);
  EXPECT_DOUBLE_EQ(binomial_coefficient(6, 3), 20.0);
  EXPECT_DOUBLE_EQ(binomial_coefficient(6, 6), 1.0);
  EXPECT_DOUBLE_EQ(binomial_coefficient(6, 7), 0.0);
}

TEST(Probability, P1MatchesPaperRows) {
  EXPECT_NEAR(p1(1), 0.380, 1e-3);
  EXPECT_NEAR(p1(2), 0.144, 1e-3);
  EXPECT_NEAR(p1(3), 0.055, 1e-3);
  EXPECT_NEAR(p1(4), 0.021, 1e-3);
}

TEST(Probability, P2MatchesPaperRows) {
  // Table III's P2 column for the paper's (m, n) pairs.
  EXPECT_NEAR(p2(3, 2), 0.324, 1e-3);
  EXPECT_NEAR(p2(4, 3), 0.157, 1e-3);
  EXPECT_NEAR(p2(5, 3), 0.284, 1e-3);
  EXPECT_NEAR(p2(6, 4), 0.153, 1e-3);
  EXPECT_NEAR(p2(7, 5), 0.078, 1e-3);
  EXPECT_NEAR(p2(9, 7), 0.018, 1e-3);
}

TEST(Probability, RequiredRemovalsMatchesTable) {
  const int expected[] = {1, 2, 2, 3, 3, 4, 5, 6, 7};
  for (int m = 1; m <= 9; ++m) {
    EXPECT_EQ(required_removals(m), expected[m - 1]) << "m=" << m;
  }
}

TEST(Probability, P2EqualsP1WhenAllMustBeRemoved) {
  // "If n = m, this is the same as p^n."
  for (int m = 1; m <= 6; ++m) {
    EXPECT_NEAR(p2(m, m, 0.38), p1(m, 0.38), 1e-12);
  }
}

TEST(Probability, P2DominatesP1) {
  for (const auto& row : table_iii()) {
    EXPECT_GE(row.p2, row.p1 - 1e-12) << "m=" << row.m;
  }
}

TEST(Probability, MonteCarloAgreesWithClosedForm) {
  Rng rng{5};
  for (int m : {2, 4, 6, 9}) {
    int n = required_removals(m);
    double mc = monte_carlo_p2(m, n, 0.38, 200000, rng);
    EXPECT_NEAR(mc, p2(m, n, 0.38), 0.01) << "m=" << m;
  }
}

TEST(Probability, EdgeProbabilities) {
  EXPECT_DOUBLE_EQ(p2(5, 0, 0.38), 1.0);  // removing zero always "works"
  EXPECT_DOUBLE_EQ(p1(0, 0.38), 1.0);
  EXPECT_DOUBLE_EQ(p2(4, 2, 0.0), 0.0);
  EXPECT_DOUBLE_EQ(p2(4, 2, 1.0), 1.0);
}

}  // namespace
}  // namespace dnstime::analysis
