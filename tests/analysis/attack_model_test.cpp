#include "analysis/attack_model.h"

#include <gtest/gtest.h>

#include <cmath>

namespace dnstime::analysis {
namespace {

using sim::Duration;

TEST(AttackModel, FragmentsPerTtlWindowMatchesPaper) {
  // "150/30 = 5 spoofed (second) fragments per attack."
  EXPECT_EQ(fragments_per_ttl_window(), 5);
  EXPECT_EQ(fragments_per_ttl_window(Duration::seconds(150),
                                     Duration::seconds(60)),
            3);
  EXPECT_EQ(fragments_per_ttl_window(Duration::seconds(150),
                                     Duration::seconds(120)),
            2);
}

TEST(AttackModel, QuietCounterAlwaysHit) {
  EXPECT_DOUBLE_EQ(spray_hit_probability(0.0, 25.0, 4), 1.0);
}

TEST(AttackModel, ZeroWidthNeverHits) {
  EXPECT_DOUBLE_EQ(spray_hit_probability(5.0, 25.0, 0), 0.0);
}

TEST(AttackModel, HitProbabilityMonotoneInWidth) {
  double prev = 0.0;
  for (std::size_t w : {1u, 4u, 16u, 64u, 100u}) {
    double p = spray_hit_probability(2.0, 25.0, w);
    EXPECT_GE(p, prev);
    prev = p;
  }
  EXPECT_GT(prev, 0.9);  // 100-wide spray covers a 2/s counter over 25 s
}

TEST(AttackModel, HitProbabilityDecreasesWithRate) {
  double prev = 1.1;
  for (double rate : {0.5, 1.0, 2.0, 8.0}) {
    double p = spray_hit_probability(rate, 25.0, 16);
    EXPECT_LT(p, prev);
    prev = p;
  }
}

TEST(AttackModel, ExpectedWindowsGeometric) {
  EXPECT_DOUBLE_EQ(expected_windows_until_success(1.0), 1.0);
  EXPECT_DOUBLE_EQ(expected_windows_until_success(0.25), 4.0);
  EXPECT_TRUE(std::isinf(expected_windows_until_success(0.0)));
}

}  // namespace
}  // namespace dnstime::analysis
