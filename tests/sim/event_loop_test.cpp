#include "sim/event_loop.h"

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "common/buffer.h"

namespace dnstime::sim {
namespace {

TEST(EventLoop, RunsInTimeOrder) {
  EventLoop loop;
  std::vector<int> order;
  loop.schedule_after(Duration::seconds(3), [&] { order.push_back(3); });
  loop.schedule_after(Duration::seconds(1), [&] { order.push_back(1); });
  loop.schedule_after(Duration::seconds(2), [&] { order.push_back(2); });
  loop.run_all();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(EventLoop, TiesBreakByInsertionOrder) {
  EventLoop loop;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    loop.schedule_after(Duration::seconds(5), [&, i] { order.push_back(i); });
  }
  loop.run_all();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[static_cast<size_t>(i)], i);
}

TEST(EventLoop, RunUntilStopsAtBoundary) {
  EventLoop loop;
  int ran = 0;
  loop.schedule_after(Duration::seconds(1), [&] { ran++; });
  loop.schedule_after(Duration::seconds(5), [&] { ran++; });
  loop.run_until(Time::from_ns(Duration::seconds(2).ns()));
  EXPECT_EQ(ran, 1);
  EXPECT_EQ(loop.now().to_seconds(), 2.0);
  loop.run_all();
  EXPECT_EQ(ran, 2);
}

TEST(EventLoop, CancelledEventsDoNotRun) {
  EventLoop loop;
  bool ran = false;
  auto h = loop.schedule_after(Duration::seconds(1), [&] { ran = true; });
  h.cancel();
  loop.run_all();
  EXPECT_FALSE(ran);
}

TEST(EventLoop, EventsCanScheduleEvents) {
  EventLoop loop;
  int depth = 0;
  std::function<void()> recurse = [&] {
    if (++depth < 5) loop.schedule_after(Duration::seconds(1), recurse);
  };
  loop.schedule_after(Duration::seconds(1), recurse);
  loop.run_all();
  EXPECT_EQ(depth, 5);
  EXPECT_EQ(loop.now().to_seconds(), 5.0);
}

TEST(EventLoop, PastScheduledEventClampsToNow) {
  EventLoop loop;
  loop.run_until(Time::from_ns(Duration::seconds(10).ns()));
  bool ran = false;
  loop.schedule_at(Time::from_ns(1), [&] { ran = true; });
  loop.run_for(Duration::seconds(1));
  EXPECT_TRUE(ran);
}

TEST(EventLoop, ClampedEventRunsAtNowNotInThePast) {
  EventLoop loop;
  loop.run_until(Time::from_ns(Duration::seconds(10).ns()));
  Time fired_at;
  loop.schedule_at(Time::from_ns(1), [&] { fired_at = loop.now(); });
  loop.run_all();
  EXPECT_EQ(fired_at, Time::from_ns(Duration::seconds(10).ns()));
  EXPECT_EQ(loop.now(), fired_at);  // the clock never moved backwards
}

TEST(EventLoop, FifoAtEqualTimestampsSurvivesHeapRebuilds) {
  // Equal-timestamp FIFO is the determinism contract's hard part: pops and
  // interleaved pushes reshuffle the heap, and any comparison that ignores
  // the sequence number reorders ties. Build a worst case: ties scheduled
  // in several batches, separated by pops that force sift-downs.
  EventLoop loop;
  std::vector<int> order;
  int tag = 0;
  for (int batch = 0; batch < 4; ++batch) {
    // Earlier filler events whose pops rebuild the heap below the ties.
    for (int i = 0; i < 7; ++i) {
      loop.schedule_after(Duration::seconds(1 + i), [] {});
    }
    for (int i = 0; i < 25; ++i) {
      loop.schedule_at(Time::from_ns(Duration::minutes(5).ns()),
                       [&order, t = tag++] { order.push_back(t); });
    }
    loop.run_until(loop.now() + Duration::seconds(10));
  }
  loop.run_all();
  ASSERT_EQ(order.size(), 100u);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(order[static_cast<size_t>(i)], i);
}

TEST(EventLoop, StaleHandleCannotCancelRecycledSlot) {
  EventLoop loop;
  bool first_ran = false;
  bool second_ran = false;
  EventHandle h1 =
      loop.schedule_after(Duration::seconds(1), [&] { first_ran = true; });
  EXPECT_TRUE(h1.valid());
  loop.run_for(Duration::seconds(2));
  EXPECT_TRUE(first_ran);
  EXPECT_FALSE(h1.valid());  // fired: handle is stale

  // The fired event's slot is recycled for the next schedule; the stale
  // handle must be inert against the new occupant.
  EventHandle h2 =
      loop.schedule_after(Duration::seconds(1), [&] { second_ran = true; });
  h1.cancel();
  EXPECT_TRUE(h2.valid());
  loop.run_all();
  EXPECT_TRUE(second_ran);
}

TEST(EventLoop, CancelledHandleStaysInertAfterSlotReuse) {
  EventLoop loop;
  bool victim_ran = false;
  EventHandle h = loop.schedule_after(Duration::seconds(1), [] {});
  h.cancel();
  EXPECT_FALSE(h.valid());
  loop.run_all();  // pops the cancelled event, releasing its slot
  loop.schedule_after(Duration::seconds(1), [&] { victim_ran = true; });
  h.cancel();  // double-cancel on a recycled slot
  loop.run_all();
  EXPECT_TRUE(victim_ran);
}

TEST(EventLoop, CancelFromInsideAnEarlierEvent) {
  EventLoop loop;
  bool ran = false;
  EventHandle h =
      loop.schedule_after(Duration::seconds(2), [&] { ran = true; });
  loop.schedule_after(Duration::seconds(1), [&] { h.cancel(); });
  loop.run_all();
  EXPECT_FALSE(ran);
  EXPECT_EQ(loop.now().to_seconds(), 2.0);  // cancelled pop still advances
}

TEST(EventLoop, RunUntilIncludesEventsExactlyAtBoundary) {
  EventLoop loop;
  int ran = 0;
  loop.schedule_after(Duration::seconds(5), [&] { ran++; });
  loop.schedule_after(Duration::seconds(5) + Duration::nanos(1),
                      [&] { ran++; });
  loop.run_until(Time::from_ns(Duration::seconds(5).ns()));
  EXPECT_EQ(ran, 1);  // at-boundary runs, past-boundary waits
  EXPECT_EQ(loop.now(), Time::from_ns(Duration::seconds(5).ns()));
  loop.run_all();
  EXPECT_EQ(ran, 2);
}

TEST(EventLoop, HandleLifecycleAcrossSchedulingBursts) {
  // Churn through many schedule/fire/cancel cycles so slots recycle
  // repeatedly, and verify the loop never misfires or double-fires.
  EventLoop loop;
  int fired = 0;
  std::vector<EventHandle> cancelled;
  for (int round = 0; round < 50; ++round) {
    for (int i = 0; i < 8; ++i) {
      loop.schedule_after(Duration::millis(10 * (i + 1)), [&] { fired++; });
      cancelled.push_back(
          loop.schedule_after(Duration::millis(5 * (i + 1)), [&] {
            ADD_FAILURE() << "cancelled event fired";
          }));
    }
    for (EventHandle& h : cancelled) h.cancel();
    cancelled.clear();
    loop.run_for(Duration::seconds(1));
    EXPECT_EQ(loop.pending(), 0u);
  }
  EXPECT_EQ(fired, 50 * 8);
}

TEST(EventLoop, MoveOnlyCallbacksAreSupported) {
  // EventFn is move-only with small-buffer optimisation: a unique_ptr
  // capture (uncopyable) and an oversized capture must both work.
  EventLoop loop;
  int out = 0;
  auto owned = std::make_unique<int>(41);
  loop.schedule_after(Duration::seconds(1),
                      [p = std::move(owned), &out] { out = *p + 1; });
  struct Big {
    char pad[200] = {};
  };
  bool big_ran = false;
  loop.schedule_after(Duration::seconds(2),
                      [big = Big{}, &big_ran] { big_ran = big.pad[0] == 0; });
  loop.run_all();
  EXPECT_EQ(out, 42);
  EXPECT_TRUE(big_ran);
}

TEST(EventLoop, CancelDestroysCallbackEagerly) {
  // Regression: cancel() used to only flag the slot, leaving the SmallFn —
  // and everything it captured — alive until the timestamp popped. A
  // cancelled far-future timer (say a 6-hour attack deadline holding a
  // PacketBuf) would pin its pool block for simulated hours. cancel() must
  // release captured resources immediately.
  const u64 base = BufferPool::local().outstanding();
  EventLoop loop;
  PacketBuf buf{1, 2, 3, 4};
  EXPECT_EQ(BufferPool::local().outstanding(), base + 1);
  EventHandle h = loop.schedule_after(Duration::hours(6),
                                      [b = std::move(buf)] { (void)b; });
  EXPECT_EQ(BufferPool::local().outstanding(), base + 1);
  h.cancel();
  EXPECT_EQ(BufferPool::local().outstanding(), base)
      << "cancelled slot must not keep its capture until the pop";
  // The cancelled node still pops (advancing the clock) without firing.
  loop.run_all();
  EXPECT_EQ(loop.now().to_seconds(), Duration::hours(6).to_seconds());
  EXPECT_EQ(loop.stats().cancelled, 1u);
}

}  // namespace
}  // namespace dnstime::sim
