#include "sim/event_loop.h"

#include <gtest/gtest.h>

#include <vector>

namespace dnstime::sim {
namespace {

TEST(EventLoop, RunsInTimeOrder) {
  EventLoop loop;
  std::vector<int> order;
  loop.schedule_after(Duration::seconds(3), [&] { order.push_back(3); });
  loop.schedule_after(Duration::seconds(1), [&] { order.push_back(1); });
  loop.schedule_after(Duration::seconds(2), [&] { order.push_back(2); });
  loop.run_all();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(EventLoop, TiesBreakByInsertionOrder) {
  EventLoop loop;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    loop.schedule_after(Duration::seconds(5), [&, i] { order.push_back(i); });
  }
  loop.run_all();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[static_cast<size_t>(i)], i);
}

TEST(EventLoop, RunUntilStopsAtBoundary) {
  EventLoop loop;
  int ran = 0;
  loop.schedule_after(Duration::seconds(1), [&] { ran++; });
  loop.schedule_after(Duration::seconds(5), [&] { ran++; });
  loop.run_until(Time::from_ns(Duration::seconds(2).ns()));
  EXPECT_EQ(ran, 1);
  EXPECT_EQ(loop.now().to_seconds(), 2.0);
  loop.run_all();
  EXPECT_EQ(ran, 2);
}

TEST(EventLoop, CancelledEventsDoNotRun) {
  EventLoop loop;
  bool ran = false;
  auto h = loop.schedule_after(Duration::seconds(1), [&] { ran = true; });
  h.cancel();
  loop.run_all();
  EXPECT_FALSE(ran);
}

TEST(EventLoop, EventsCanScheduleEvents) {
  EventLoop loop;
  int depth = 0;
  std::function<void()> recurse = [&] {
    if (++depth < 5) loop.schedule_after(Duration::seconds(1), recurse);
  };
  loop.schedule_after(Duration::seconds(1), recurse);
  loop.run_all();
  EXPECT_EQ(depth, 5);
  EXPECT_EQ(loop.now().to_seconds(), 5.0);
}

TEST(EventLoop, PastScheduledEventClampsToNow) {
  EventLoop loop;
  loop.run_until(Time::from_ns(Duration::seconds(10).ns()));
  bool ran = false;
  loop.schedule_at(Time::from_ns(1), [&] { ran = true; });
  loop.run_for(Duration::seconds(1));
  EXPECT_TRUE(ran);
}

}  // namespace
}  // namespace dnstime::sim
