// TimerWheel vs EventLoop: the wheel's contract is "same observable
// semantics as the loop, different complexity" — so the loop is the test
// oracle. The property test drives identical schedule/cancel/run streams
// through both and asserts identical firing order and clock positions;
// the directed tests pin the wheel-specific mechanics (cascades, the
// overflow list, FIFO ties across cascade paths, eager cancel).
#include "sim/timer_wheel.h"

#include <gtest/gtest.h>

#include <utility>
#include <vector>

#include "common/buffer.h"
#include "common/rng.h"
#include "sim/event_loop.h"

namespace dnstime::sim {
namespace {

TEST(WheelQueue, PopsInTimeThenInsertionOrder) {
  WheelQueue q;
  q.push(Time::from_ns(Duration::seconds(5).ns()), 50);
  q.push(Time::from_ns(Duration::seconds(1).ns()), 10);
  q.push(Time::from_ns(Duration::seconds(5).ns()), 51);  // tie with 50
  q.push(Time::from_ns(Duration::seconds(3).ns()), 30);
  std::vector<u32> order;
  WheelEntry e;
  while (q.pop(e)) order.push_back(e.payload);
  EXPECT_EQ(order, (std::vector<u32>{10, 30, 50, 51}));
}

TEST(WheelQueue, TiesStayFifoAcrossCascadePaths) {
  // Entries at the same instant arrive via different placements: some are
  // pushed when the deadline is level-2-far, some after the cursor has
  // moved close (level 0). FIFO order must survive both routes.
  WheelQueue q;
  const Time target = Time::from_ns(Duration::minutes(30).ns());
  q.push(target, 0);  // placed far (high level, will cascade)
  q.push(Time::from_ns(Duration::minutes(29).ns()), 99);
  WheelEntry e;
  ASSERT_TRUE(q.pop(e));  // advances the cursor near the target
  EXPECT_EQ(e.payload, 99u);
  q.push(target, 1);  // placed near (low level)
  q.push(target, 2);
  std::vector<u32> order;
  while (q.pop(e)) order.push_back(e.payload);
  EXPECT_EQ(order, (std::vector<u32>{0, 1, 2}));
}

TEST(WheelQueue, SpreadDeadlinesCascade) {
  WheelQueue q;
  for (u32 i = 0; i < 64; ++i) {
    q.push(Time::from_ns(Duration::minutes(1 + i * 7).ns()), i);
  }
  u32 prev = 0;
  WheelEntry e;
  u32 popped = 0;
  while (q.pop(e)) {
    if (popped++ > 0) EXPECT_GT(e.payload, prev);
    prev = e.payload;
  }
  EXPECT_EQ(popped, 64u);
  EXPECT_GT(q.cascades(), 0u) << "minute-scale deadlines must traverse "
                                 "upper levels, not land on level 0";
}

TEST(WheelQueue, OverflowBeyondHorizonFiresInOrder) {
  // The wheel horizon is 2^32 ticks of 2^20 ns ~ 52 days; deadlines past
  // it sit in the overflow list and must still interleave correctly.
  WheelQueue q;
  q.push(Time::from_ns(Duration::hours(24 * 80).ns()), 2);   // overflow
  q.push(Time::from_ns(Duration::hours(24 * 100).ns()), 3);  // overflow
  q.push(Time::from_ns(Duration::hours(24 * 10).ns()), 1);   // in wheel
  q.push(Time::from_ns(Duration::seconds(1).ns()), 0);
  std::vector<u32> order;
  WheelEntry e;
  while (q.pop(e)) order.push_back(e.payload);
  EXPECT_EQ(order, (std::vector<u32>{0, 1, 2, 3}));
}

TEST(WheelQueue, LatePushLandsBeforeEarlierOverflowEntry) {
  // Regression for the overflow refill rule: a push that lands *between*
  // the cursor and an already-overflowed deadline must pop first, even
  // though the overflow entry was pushed earlier.
  WheelQueue q;
  q.push(Time::from_ns(Duration::hours(24 * 60).ns()), 7);  // overflow
  q.push(Time::from_ns(Duration::hours(24 * 55).ns()), 6);  // also overflow
  q.push(Time::from_ns(Duration::hours(24 * 3).ns()), 5);   // in wheel
  std::vector<u32> order;
  WheelEntry e;
  while (q.pop(e)) order.push_back(e.payload);
  EXPECT_EQ(order, (std::vector<u32>{5, 6, 7}));
}

TEST(WheelQueue, StalePushBecomesImmediatelyReady) {
  WheelQueue q;
  q.push(Time::from_ns(Duration::seconds(10).ns()), 1);
  WheelEntry e;
  ASSERT_TRUE(q.pop(e));
  q.push(Time::from_ns(Duration::seconds(2).ns()), 2);  // before last pop
  ASSERT_TRUE(q.pop(e));
  EXPECT_EQ(e.payload, 2u);
}

TEST(TimerWheel, RunUntilBoundarySemanticsMatchEventLoop) {
  TimerWheel wheel;
  int ran = 0;
  wheel.schedule_after(Duration::seconds(1), [&] { ran++; });
  wheel.schedule_after(Duration::seconds(2), [&] { ran++; });
  wheel.schedule_after(Duration::seconds(5), [&] { ran++; });
  wheel.run_until(Time::from_ns(Duration::seconds(2).ns()));
  EXPECT_EQ(ran, 2) << "events at exactly `until` still run";
  EXPECT_EQ(wheel.now().to_seconds(), 2.0);
  wheel.run_until(Time::from_ns(Duration::seconds(3).ns()));
  EXPECT_EQ(wheel.now().to_seconds(), 3.0)
      << "clock advances to the boundary even with no event to run";
  wheel.run_all();
  EXPECT_EQ(ran, 3);
  EXPECT_EQ(wheel.now().to_seconds(), 5.0);
}

TEST(TimerWheel, SchedulingInThePastClampsToNow) {
  TimerWheel wheel;
  wheel.schedule_after(Duration::seconds(4), [] {});
  wheel.run_all();
  Time fired_at;
  wheel.schedule_at(Time::from_ns(Duration::seconds(1).ns()),
                    [&] { fired_at = wheel.now(); });
  wheel.run_all();
  EXPECT_EQ(fired_at.to_seconds(), 4.0);
}

TEST(TimerWheel, CancelSkipsCallback) {
  TimerWheel wheel;
  int ran = 0;
  WheelHandle h =
      wheel.schedule_after(Duration::seconds(3), [&] { ran++; });
  wheel.schedule_after(Duration::seconds(5), [&] { ran++; });
  EXPECT_TRUE(h.valid());
  h.cancel();
  EXPECT_FALSE(h.valid());
  wheel.run_all();
  EXPECT_EQ(ran, 1);
  EXPECT_EQ(wheel.stats().cancelled, 1u);
  EXPECT_EQ(wheel.now().to_seconds(), 5.0);
}

TEST(TimerWheel, CancelRemovesEntryAndNeverAdvancesClockToIt) {
  // O(1) cancellation removes the wheel entry outright: the cancelled
  // deadline no longer exists, so pending() drops immediately and run_all
  // stops at the last *live* event instead of walking to the tombstone.
  TimerWheel wheel;
  int ran = 0;
  wheel.schedule_after(Duration::seconds(3), [&] { ran++; });
  WheelHandle far = wheel.schedule_after(Duration::hours(2), [&] { ran++; });
  WheelHandle overflow =  // beyond the ~52-day wheel horizon
      wheel.schedule_after(Duration::hours(24 * 80), [&] { ran++; });
  EXPECT_EQ(wheel.pending(), 3u);
  far.cancel();
  overflow.cancel();
  EXPECT_EQ(wheel.pending(), 1u) << "cancelled entries must leave the queue";
  wheel.run_all();
  EXPECT_EQ(ran, 1);
  EXPECT_EQ(wheel.stats().cancelled, 2u);
  EXPECT_EQ(wheel.now().to_seconds(), 3.0)
      << "the clock must not visit removed deadlines";
}

TEST(TimerWheel, CancelOfReadyEntryFallsBackToTombstone) {
  // Two events share one tick, so both are staged in the ready heap when
  // the first fires; cancelling the second from inside the first's
  // callback hits the heap-resident case, where O(1) removal is
  // impossible and the entry must pop as a skipped tombstone instead.
  TimerWheel wheel;
  int ran = 0;
  WheelHandle second;
  wheel.schedule_after(Duration::seconds(1), [&] {
    ran++;
    second.cancel();
  });
  second = wheel.schedule_after(Duration::seconds(1), [&] { ran++; });
  wheel.run_all();
  EXPECT_EQ(ran, 1);
  EXPECT_EQ(wheel.stats().cancelled, 1u);
  EXPECT_EQ(wheel.now().to_seconds(), 1.0);
}

TEST(WheelQueue, CancelRemovesFromBucketAndOverflow) {
  WheelQueue q;
  q.push(Time::from_ns(Duration::seconds(1).ns()), 1);
  q.push(Time::from_ns(Duration::seconds(5).ns()), 2);
  q.push(Time::from_ns(Duration::hours(24 * 80).ns()), 3);  // overflow
  EXPECT_TRUE(q.cancel(2));
  EXPECT_TRUE(q.cancel(3));
  EXPECT_FALSE(q.cancel(2)) << "already removed";
  EXPECT_FALSE(q.cancel(7)) << "never queued";
  EXPECT_EQ(q.size(), 1u);
  WheelEntry e;
  ASSERT_TRUE(q.pop(e));
  EXPECT_EQ(e.payload, 1u);
  EXPECT_FALSE(q.pop(e));
  // A payload whose entry was cancelled (or popped) can be re-queued.
  q.push(Time::from_ns(Duration::seconds(9).ns()), 2);
  ASSERT_TRUE(q.pop(e));
  EXPECT_EQ(e.payload, 2u);
}

TEST(TimerWheel, CancelDestroysCallbackEagerly) {
  // A cancelled far-future timer must release its captured resources at
  // cancel time, not when the wheel entry eventually pops — same contract
  // (and same regression) as EventHandle::cancel.
  const u64 base = BufferPool::local().stats().outstanding;
  TimerWheel wheel;
  PacketBuf buf{1, 2, 3, 4};
  EXPECT_EQ(BufferPool::local().stats().outstanding, base + 1);
  WheelHandle h = wheel.schedule_after(Duration::hours(24 * 365),
                                       [b = std::move(buf)] { (void)b; });
  EXPECT_EQ(BufferPool::local().stats().outstanding, base + 1);
  h.cancel();
  EXPECT_EQ(BufferPool::local().stats().outstanding, base)
      << "cancel must destroy the callback, not just flag the slot";
}

// --- the oracle property test ---------------------------------------------

TEST(TimerWheelProperty, MatchesEventLoopOnRandomisedStreams) {
  for (u64 seed : {1ull, 7ull, 1234ull, 0x5eedull}) {
    Rng rng(seed);
    EventLoop oracle;
    TimerWheel wheel;
    std::vector<int> fired_oracle;
    std::vector<int> fired_wheel;
    std::vector<EventHandle> oracle_handles;
    std::vector<WheelHandle> wheel_handles;
    int next_id = 0;

    for (int round = 0; round < 40; ++round) {
      // Schedule a batch at deltas spanning every placement path: ready
      // (0), level 0 (sub-ms), mid levels (ms..min), top level (hours),
      // overflow (months) — with deliberate duplicates for FIFO ties.
      const u32 batch = static_cast<u32>(rng.uniform(1, 24));
      for (u32 b = 0; b < batch; ++b) {
        i64 delta_ns = 0;
        switch (rng.uniform(0, 5)) {
          case 0: delta_ns = 0; break;
          case 1: delta_ns = static_cast<i64>(rng.uniform(1, 1'000'000)); break;
          case 2:
            delta_ns = Duration::millis(
                           static_cast<i64>(rng.uniform(1, 60'000))).ns();
            break;
          case 3:
            delta_ns =
                Duration::seconds(static_cast<i64>(rng.uniform(60, 7'200)))
                    .ns();
            break;
          case 4:
            delta_ns =
                Duration::hours(static_cast<i64>(rng.uniform(1, 24 * 90)))
                    .ns();
            break;
          default:
            // Exact tie with the previous event when there is one.
            delta_ns = Duration::seconds(5).ns();
            break;
        }
        const Time at = oracle.now() + Duration::nanos(delta_ns);
        const int id = next_id++;
        oracle_handles.push_back(
            oracle.schedule_at(at, [&fired_oracle, id] {
              fired_oracle.push_back(id);
            }));
        wheel_handles.push_back(wheel.schedule_at(at, [&fired_wheel, id] {
          fired_wheel.push_back(id);
        }));
      }
      // Cancel a random subset — including handles that already fired,
      // which must be generation-checked no-ops in both.
      for (std::size_t k = 0; k < oracle_handles.size(); ++k) {
        if (rng.chance(0.15)) {
          oracle_handles[k].cancel();
          wheel_handles[k].cancel();
        }
      }
      // Advance both to the same boundary.
      const Duration adv =
          Duration::millis(static_cast<i64>(rng.uniform(1, 600'000)));
      const Time until = oracle.now() + adv;
      oracle.run_until(until);
      wheel.run_until(until);
      ASSERT_EQ(oracle.now().ns(), wheel.now().ns()) << "seed " << seed;
      ASSERT_EQ(fired_oracle, fired_wheel) << "seed " << seed;
    }

    // Finale at a fixed far boundary rather than run_all: the loop keeps
    // cancelled entries as tombstones and walks its clock to them, while
    // the wheel removed them outright — run_until clamps both clocks to
    // the same boundary, so live firing order and final clock still must
    // agree exactly.
    const Time far = Time::from_ns(Duration::hours(24 * 365).ns());
    oracle.run_until(far);
    wheel.run_until(far);
    ASSERT_EQ(fired_oracle, fired_wheel) << "seed " << seed;
    ASSERT_EQ(oracle.now().ns(), wheel.now().ns()) << "seed " << seed;
    ASSERT_EQ(oracle.pending(), 0u);
    ASSERT_EQ(wheel.pending(), 0u);
  }
}

TEST(TimerWheelProperty, IdenticalStreamsGiveIdenticalStats) {
  // Determinism of the wheel itself: the same call stream twice gives the
  // same firing order, the same cascade count and the same stats.
  auto run = [] {
    TimerWheel wheel;
    Rng rng(99);
    std::vector<int> fired;
    for (int i = 0; i < 500; ++i) {
      const Duration d =
          Duration::millis(static_cast<i64>(rng.uniform(0, 500'000)));
      wheel.schedule_after(d, [&fired, i] { fired.push_back(i); });
    }
    wheel.run_all();
    return std::pair<std::vector<int>, u64>(std::move(fired),
                                            wheel.stats().fired);
  };
  const auto a = run();
  const auto b = run();
  EXPECT_EQ(a.first, b.first);
  EXPECT_EQ(a.second, b.second);
}

}  // namespace
}  // namespace dnstime::sim
