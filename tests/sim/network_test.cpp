#include "sim/network.h"

#include <gtest/gtest.h>

namespace dnstime::sim {
namespace {

struct Capture : PacketSink {
  std::vector<net::Ipv4Packet> packets;
  void deliver(const net::Ipv4Packet& pkt) override { packets.push_back(pkt); }
};

net::Ipv4Packet make_packet(Ipv4Addr src, Ipv4Addr dst) {
  net::Ipv4Packet pkt;
  pkt.src = src;
  pkt.dst = dst;
  pkt.payload = {1};
  return pkt;
}

TEST(Network, DeliversToAttachedSink) {
  EventLoop loop;
  Network net{loop, Rng{1}};
  Capture sink;
  Ipv4Addr addr{10, 0, 0, 1};
  net.attach(addr, &sink);
  net.send(make_packet(Ipv4Addr{10, 0, 0, 2}, addr));
  loop.run_all();
  ASSERT_EQ(sink.packets.size(), 1u);
}

TEST(Network, UnknownDestinationSilentlyDropped) {
  EventLoop loop;
  Network net{loop, Rng{1}};
  net.send(make_packet(Ipv4Addr{1, 1, 1, 1}, Ipv4Addr{2, 2, 2, 2}));
  loop.run_all();
  EXPECT_EQ(net.packets_delivered(), 0u);
  EXPECT_EQ(net.packets_sent(), 1u);
}

TEST(Network, LatencyDelaysDelivery) {
  EventLoop loop;
  Network net{loop, Rng{1}};
  net.set_default_profile(LinkProfile{.latency = Duration::millis(25)});
  Capture sink;
  Ipv4Addr addr{10, 0, 0, 1};
  net.attach(addr, &sink);
  net.send(make_packet(Ipv4Addr{10, 0, 0, 2}, addr));
  loop.run_until(Time::from_ns(Duration::millis(24).ns()));
  EXPECT_TRUE(sink.packets.empty());
  loop.run_until(Time::from_ns(Duration::millis(25).ns()));
  EXPECT_EQ(sink.packets.size(), 1u);
}

TEST(Network, PerPathProfileOverridesDefault) {
  EventLoop loop;
  Network net{loop, Rng{1}};
  net.set_default_profile(LinkProfile{.latency = Duration::millis(10)});
  Ipv4Addr fast_src{1, 1, 1, 1}, dst{10, 0, 0, 1};
  net.set_profile(fast_src, dst, LinkProfile{.latency = Duration::millis(1)});
  Capture sink;
  net.attach(dst, &sink);
  net.send(make_packet(fast_src, dst));
  loop.run_until(Time::from_ns(Duration::millis(1).ns()));
  EXPECT_EQ(sink.packets.size(), 1u);
}

TEST(Network, FullLossDropsEverything) {
  EventLoop loop;
  Network net{loop, Rng{1}};
  net.set_default_profile(LinkProfile{.loss = 1.0});
  Capture sink;
  Ipv4Addr addr{10, 0, 0, 1};
  net.attach(addr, &sink);
  for (int i = 0; i < 50; ++i) {
    net.send(make_packet(Ipv4Addr{10, 0, 0, 2}, addr));
  }
  loop.run_all();
  EXPECT_TRUE(sink.packets.empty());
}

TEST(Network, PartialLossDropsSome) {
  EventLoop loop;
  Network net{loop, Rng{42}};
  net.set_default_profile(LinkProfile{.loss = 0.5});
  Capture sink;
  Ipv4Addr addr{10, 0, 0, 1};
  net.attach(addr, &sink);
  for (int i = 0; i < 400; ++i) {
    net.send(make_packet(Ipv4Addr{10, 0, 0, 2}, addr));
  }
  loop.run_all();
  EXPECT_GT(sink.packets.size(), 120u);
  EXPECT_LT(sink.packets.size(), 280u);
}

TEST(Network, DetachStopsDelivery) {
  EventLoop loop;
  Network net{loop, Rng{1}};
  Capture sink;
  Ipv4Addr addr{10, 0, 0, 1};
  net.attach(addr, &sink);
  net.detach(addr);
  net.send(make_packet(Ipv4Addr{10, 0, 0, 2}, addr));
  loop.run_all();
  EXPECT_TRUE(sink.packets.empty());
}

}  // namespace
}  // namespace dnstime::sim
