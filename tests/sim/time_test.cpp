// Duration/Time arithmetic pins. The interesting part is the edge of the
// i64 nanosecond range: constructors and operators must saturate there
// (documented in sim/time.h) instead of hitting signed-overflow UB — a
// Duration::hours() on a large count or `far_future + d` in a scheduler
// must stay well-defined.
#include "sim/time.h"

#include <gtest/gtest.h>

#include <limits>

namespace dnstime::sim {
namespace {

constexpr i64 kMaxNs = std::numeric_limits<i64>::max();
constexpr i64 kMinNs = std::numeric_limits<i64>::min();

TEST(Duration, InRangeConstructionIsExact) {
  EXPECT_EQ(Duration::nanos(1).ns(), 1);
  EXPECT_EQ(Duration::micros(2).ns(), 2'000);
  EXPECT_EQ(Duration::millis(3).ns(), 3'000'000);
  EXPECT_EQ(Duration::seconds(4).ns(), 4'000'000'000LL);
  EXPECT_EQ(Duration::minutes(5).ns(), 300'000'000'000LL);
  EXPECT_EQ(Duration::hours(6).ns(), 21'600'000'000'000LL);
  EXPECT_EQ(Duration::seconds(-7).ns(), -7'000'000'000LL);
}

TEST(Duration, ConstructorsSaturateInsteadOfOverflowing) {
  // i64 max nanoseconds is ~292 years; each factory saturates once its
  // unit count crosses that.
  EXPECT_EQ(Duration::micros(kMaxNs).ns(), kMaxNs);
  EXPECT_EQ(Duration::millis(kMaxNs).ns(), kMaxNs);
  EXPECT_EQ(Duration::seconds(kMaxNs).ns(), kMaxNs);
  EXPECT_EQ(Duration::minutes(kMaxNs).ns(), kMaxNs);
  EXPECT_EQ(Duration::hours(kMaxNs).ns(), kMaxNs);
  EXPECT_EQ(Duration::hours(4'000'000).ns(), kMaxNs);  // first out-of-range
  EXPECT_EQ(Duration::micros(kMinNs).ns(), kMinNs);
  EXPECT_EQ(Duration::seconds(kMinNs).ns(), kMinNs);
  EXPECT_EQ(Duration::hours(-4'000'000).ns(), kMinNs);
}

TEST(Duration, ArithmeticSaturates) {
  const Duration big = Duration::nanos(kMaxNs);
  const Duration small = Duration::nanos(kMinNs);
  EXPECT_EQ((big + Duration::seconds(1)).ns(), kMaxNs);
  EXPECT_EQ((small - Duration::seconds(1)).ns(), kMinNs);
  EXPECT_EQ((big * 2).ns(), kMaxNs);
  EXPECT_EQ((small * 2).ns(), kMinNs);
  EXPECT_EQ((big * -2).ns(), kMinNs);
  // The one overflowing division: i64 min / -1.
  EXPECT_EQ((small / -1).ns(), kMaxNs);
  // In-range arithmetic is untouched.
  EXPECT_EQ((Duration::seconds(3) + Duration::seconds(4)).ns(),
            Duration::seconds(7).ns());
  EXPECT_EQ((Duration::seconds(3) - Duration::seconds(4)).ns(),
            Duration::seconds(-1).ns());
  EXPECT_EQ((Duration::seconds(3) * 4).ns(), Duration::seconds(12).ns());
  EXPECT_EQ((Duration::seconds(12) / 4).ns(), Duration::seconds(3).ns());
}

TEST(Duration, FromSecondsFloatClampsNonFinite) {
  EXPECT_EQ(Duration::from_seconds_f(0.5).ns(), 500'000'000LL);
  EXPECT_EQ(Duration::from_seconds_f(-0.5).ns(), -500'000'000LL);
  const double nan = std::numeric_limits<double>::quiet_NaN();
  EXPECT_EQ(Duration::from_seconds_f(nan).ns(), 0);
  const double inf = std::numeric_limits<double>::infinity();
  EXPECT_EQ(Duration::from_seconds_f(inf).ns(), kMaxNs);
  EXPECT_EQ(Duration::from_seconds_f(-inf).ns(), kMinNs);
  EXPECT_EQ(Duration::from_seconds_f(1e300).ns(), kMaxNs);
  EXPECT_EQ(Duration::from_seconds_f(-1e300).ns(), kMinNs);
}

TEST(Time, ArithmeticSaturates) {
  const Time far = Time::from_ns(kMaxNs);
  EXPECT_EQ((far + Duration::hours(1)).ns(), kMaxNs);
  EXPECT_EQ((Time::from_ns(kMinNs) - Duration::hours(1)).ns(), kMinNs);
  EXPECT_EQ((far - Time::from_ns(kMinNs)).ns(), kMaxNs);
  // In-range positions are exact.
  const Time t = Time::from_ns(1'000);
  EXPECT_EQ((t + Duration::nanos(24)).ns(), 1'024);
  EXPECT_EQ((t - Duration::nanos(24)).ns(), 976);
  EXPECT_EQ((t - Time::from_ns(400)).ns(), 600);
}

}  // namespace
}  // namespace dnstime::sim
