#include <gtest/gtest.h>

#include <limits>

#include "common/bytes.h"
#include "common/histogram.h"
#include "common/rng.h"
#include "common/stats.h"
#include "ntp/clock.h"

namespace dnstime {
namespace {

TEST(Bytes, WriterReaderRoundTrip) {
  ByteWriter w;
  w.write_u8(0xAB);
  w.write_u16(0x1234);
  w.write_u32(0xDEADBEEF);
  w.write_u64(0x0102030405060708ull);
  w.write_string("hi");
  Bytes buf = std::move(w).take();
  ByteReader r(buf);
  EXPECT_EQ(r.read_u8(), 0xAB);
  EXPECT_EQ(r.read_u16(), 0x1234);
  EXPECT_EQ(r.read_u32(), 0xDEADBEEFu);
  EXPECT_EQ(r.read_u64(), 0x0102030405060708ull);
  EXPECT_EQ(r.read_bytes(2), (Bytes{'h', 'i'}));
  EXPECT_TRUE(r.empty());
}

TEST(Bytes, TruncatedReadThrows) {
  Bytes buf = {1, 2};
  ByteReader r(buf);
  EXPECT_THROW((void)r.read_u32(), DecodeError);
}

TEST(Bytes, PatchU16) {
  ByteWriter w;
  w.write_u32(0);
  w.patch_u16(1, 0xBEEF);
  EXPECT_EQ(w.data()[1], 0xBE);
  EXPECT_EQ(w.data()[2], 0xEF);
  EXPECT_THROW(w.patch_u16(3, 1), DecodeError);
}

TEST(Rng, DeterministicForSeed) {
  Rng a{42}, b{42};
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.next_u32(), b.next_u32());
  }
}

TEST(Rng, UniformBoundsInclusive) {
  Rng rng{7};
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 2000; ++i) {
    u64 v = rng.uniform(3, 5);
    EXPECT_GE(v, 3u);
    EXPECT_LE(v, 5u);
    if (v == 3) saw_lo = true;
    if (v == 5) saw_hi = true;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Rng, SampleIndicesDistinct) {
  Rng rng{9};
  auto idx = rng.sample_indices(100, 15);
  ASSERT_EQ(idx.size(), 15u);
  std::sort(idx.begin(), idx.end());
  EXPECT_EQ(std::unique(idx.begin(), idx.end()), idx.end());
  EXPECT_LT(idx.back(), 100u);
  EXPECT_EQ(rng.sample_indices(3, 10).size(), 3u);  // k > n clamps
}

TEST(Stats, MedianOddEven) {
  EXPECT_DOUBLE_EQ(median({3, 1, 2}), 2.0);
  EXPECT_DOUBLE_EQ(median({4, 1, 3, 2}), 2.5);
  EXPECT_DOUBLE_EQ(median({-500, -500, -500, -500, 0, 0}), -500.0);
  EXPECT_DOUBLE_EQ(median({}), 0.0);
}

TEST(Stats, LinearSlope) {
  EXPECT_NEAR(linear_slope({0, 1, 2, 3}, {5, 7, 9, 11}), 2.0, 1e-12);
  EXPECT_DOUBLE_EQ(linear_slope({1, 1}, {2, 3}), 0.0);  // degenerate x
}

TEST(Histogram, ClampsToEdges) {
  Histogram h(0, 10, 5);
  h.add(-100);
  h.add(100);
  h.add(5);
  EXPECT_EQ(h.count(0), 1u);
  EXPECT_EQ(h.count(4), 1u);
  EXPECT_EQ(h.count(2), 1u);
  EXPECT_EQ(h.total(), 3u);
}

TEST(EmpiricalCdf, FractionsAndQuantiles) {
  EmpiricalCdf cdf;
  for (double v : {1.0, 2.0, 3.0, 4.0}) cdf.add(v);
  EXPECT_DOUBLE_EQ(cdf.fraction_leq(0.5), 0.0);
  EXPECT_DOUBLE_EQ(cdf.fraction_leq(2.0), 0.5);
  EXPECT_DOUBLE_EQ(cdf.fraction_leq(9.0), 1.0);
  EXPECT_DOUBLE_EQ(cdf.quantile(0.0), 1.0);
  EXPECT_DOUBLE_EQ(cdf.quantile(1.0), 4.0);
}

TEST(EmpiricalCdf, QuantileClampsOutOfRangeArguments) {
  // Nearest-rank contract: quantile(q) = sorted sample at floor(q*(n-1)),
  // with q clamped to [0, 1]. Out-of-range q used to index out of bounds.
  EmpiricalCdf cdf;
  for (double v : {10.0, 20.0, 30.0}) cdf.add(v);
  EXPECT_DOUBLE_EQ(cdf.quantile(-0.5), 10.0);
  EXPECT_DOUBLE_EQ(cdf.quantile(1.5), 30.0);
  EXPECT_DOUBLE_EQ(cdf.quantile(1e9), 30.0);
  EXPECT_DOUBLE_EQ(cdf.quantile(std::numeric_limits<double>::quiet_NaN()),
                   10.0);
  // Interior values use floor (nearest rank, lower): 0.49 of n=3 -> index 0.
  EXPECT_DOUBLE_EQ(cdf.quantile(0.49), 10.0);
  EXPECT_DOUBLE_EQ(cdf.quantile(0.5), 20.0);
}

TEST(EmpiricalCdf, QuantileOnEmptyAndSingleton) {
  EmpiricalCdf empty;
  EXPECT_DOUBLE_EQ(empty.quantile(0.5), 0.0);
  EmpiricalCdf one;
  one.add(7.0);
  EXPECT_DOUBLE_EQ(one.quantile(0.0), 7.0);
  EXPECT_DOUBLE_EQ(one.quantile(1.0), 7.0);
  EXPECT_DOUBLE_EQ(one.quantile(2.0), 7.0);
}

TEST(SystemClock, TracksStepsAndSlews) {
  ntp::SystemClock clock(0.0);
  sim::Time t;
  clock.slew(0.05, t);
  clock.step(-500.0, t + sim::Duration::seconds(10));
  EXPECT_NEAR(clock.offset(), -499.95, 1e-9);
  auto shift = clock.first_shift_beyond(400.0);
  ASSERT_TRUE(shift.has_value());
  EXPECT_EQ(shift->to_seconds(), 10.0);
  EXPECT_FALSE(clock.first_shift_beyond(1000.0).has_value());
}

TEST(SystemClock, WallSecondsAdvanceWithSimTime) {
  ntp::SystemClock clock(2.5);
  sim::Time t = sim::Time::from_ns(sim::Duration::seconds(100).ns());
  EXPECT_DOUBLE_EQ(clock.wall_seconds(t),
                   ntp::kSimEpochNtpSeconds + 100.0 + 2.5);
}

}  // namespace
}  // namespace dnstime
