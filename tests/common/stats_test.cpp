// The diff engine's significance primitives against independently
// computed references (python: math.erfc for the normal, Simpson
// integration of the t pdf for Student-t tails, the closed-form binomial
// identity for integer-parameter incomplete beta) and the degenerate-input
// contracts the header documents (zero variance, n = 1, all-success).
#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <vector>

#include "common/stats.h"

namespace dnstime {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

TEST(NormalCdf, ReferenceValues) {
  EXPECT_DOUBLE_EQ(normal_cdf(0.0), 0.5);
  EXPECT_NEAR(normal_cdf(1.0), 0.841344746068543, 1e-12);
  EXPECT_NEAR(normal_cdf(1.96), 0.97500210485178, 1e-12);
  EXPECT_NEAR(normal_cdf(-2.5), 0.00620966532577614, 1e-14);
  EXPECT_NEAR(normal_cdf(3.5), 0.999767370920964, 1e-12);
  // Symmetry: Phi(z) + Phi(-z) == 1, including deep tails.
  for (double z : {0.1, 1.3, 4.0, 7.5}) {
    EXPECT_NEAR(normal_cdf(z) + normal_cdf(-z), 1.0, 1e-14);
  }
}

TEST(NormalTwoSidedP, MatchesErfc) {
  EXPECT_NEAR(normal_two_sided_p(1.96), 2.0 * (1.0 - 0.97500210485178),
              1e-12);
  EXPECT_DOUBLE_EQ(normal_two_sided_p(0.0), 1.0);
  EXPECT_EQ(normal_two_sided_p(std::numeric_limits<double>::quiet_NaN()),
            1.0);
}

TEST(IncompleteBeta, IntegerParameterClosedForm) {
  // For integer a, b: I_x(a,b) equals a binomial tail sum (computed
  // independently in python via math.comb).
  EXPECT_NEAR(incomplete_beta(2.0, 5.0, 0.3), 0.579825, 1e-12);
  EXPECT_NEAR(incomplete_beta(4.0, 4.0, 0.5), 0.5, 1e-12);
  EXPECT_DOUBLE_EQ(incomplete_beta(2.0, 3.0, 0.0), 0.0);
  EXPECT_DOUBLE_EQ(incomplete_beta(2.0, 3.0, 1.0), 1.0);
  // Complement identity on the half-integer parameters the t CDF uses.
  EXPECT_NEAR(incomplete_beta(5.0, 0.5, 0.8) +
                  incomplete_beta(0.5, 5.0, 0.2),
              1.0, 1e-12);
}

TEST(StudentT, TwoSidedReferenceValues) {
  // References: full-tail numerical integration of the t pdf via a tan
  // substitution (independent of the incomplete-beta route the
  // implementation takes). df = 1, t = 1 is exactly 0.5 analytically.
  EXPECT_NEAR(student_t_two_sided_p(2.0, 10.0), 0.0733880347707364, 1e-11);
  EXPECT_NEAR(student_t_two_sided_p(1.0, 1.0), 0.5, 1e-11);
  EXPECT_NEAR(student_t_two_sided_p(5.5, 3.7), 0.00666820569301293, 1e-11);
  // Symmetry in t, edge cases.
  EXPECT_DOUBLE_EQ(student_t_two_sided_p(2.0, 10.0),
                   student_t_two_sided_p(-2.0, 10.0));
  EXPECT_DOUBLE_EQ(student_t_two_sided_p(0.0, 5.0), 1.0);
  EXPECT_DOUBLE_EQ(student_t_two_sided_p(kInf, 5.0), 0.0);
  EXPECT_DOUBLE_EQ(
      student_t_two_sided_p(std::numeric_limits<double>::quiet_NaN(), 5.0),
      1.0);
}

TEST(Variance, MatchesStddevAndHandComputation) {
  std::vector<double> v = {1, 2, 3, 4, 5};
  EXPECT_DOUBLE_EQ(variance(v), 2.5);
  EXPECT_DOUBLE_EQ(variance(v), stddev(v) * stddev(v));
  EXPECT_DOUBLE_EQ(variance({}), 0.0);
  EXPECT_DOUBLE_EQ(variance({7.0}), 0.0);  // n = 1: not estimable
}

TEST(PooledVariance, HandComputed) {
  EXPECT_DOUBLE_EQ(pooled_variance(5, 2.5, 3, 4.0), 3.0);
  // Equal variances pool to themselves regardless of n.
  EXPECT_DOUBLE_EQ(pooled_variance(10, 1.5, 2, 1.5), 1.5);
  // Fewer than two total degrees of freedom: contract says 0.
  EXPECT_DOUBLE_EQ(pooled_variance(1, 0.0, 1, 0.0), 0.0);
  // One sample contributes all the degrees of freedom.
  EXPECT_DOUBLE_EQ(pooled_variance(1, 7.0, 4, 2.0), 2.0);
  // An empty side is undefined, never an unsigned n-1 wraparound.
  EXPECT_DOUBLE_EQ(pooled_variance(0, 1.0, 3, 1.0), 0.0);
  EXPECT_DOUBLE_EQ(pooled_variance(3, 1.0, 0, 1.0), 0.0);
}

TEST(WelchT, ReferenceValues) {
  // a = {1..5}, b = {2,4,...,10}: t = 1.8974, df = 5.882, p = 0.1075
  // (references via independent python computation).
  TestResult r = welch_t_test({1, 2, 3, 4, 5}, {2, 4, 6, 8, 10});
  ASSERT_TRUE(r.valid);
  EXPECT_NEAR(r.statistic, 1.8973665961, 1e-9);
  EXPECT_NEAR(r.df, 5.88235294118, 1e-9);
  EXPECT_NEAR(r.p, 0.107531194930633, 1e-11);

  // Unequal sample sizes.
  TestResult r2 = welch_t_test({10.1, 9.8, 10.3, 10.0, 9.9, 10.2, 10.4},
                               {10.9, 11.2, 10.7});
  ASSERT_TRUE(r2.valid);
  EXPECT_NEAR(r2.statistic, 5.0, 1e-9);
  EXPECT_NEAR(r2.df, 3.35120643432, 1e-9);
  EXPECT_NEAR(r2.p, 0.0117582632192009, 1e-11);

  // Order of the samples only flips the sign.
  TestResult r3 = welch_t_test({2, 4, 6, 8, 10}, {1, 2, 3, 4, 5});
  EXPECT_DOUBLE_EQ(r3.statistic, -r.statistic);
  EXPECT_DOUBLE_EQ(r3.p, r.p);
}

TEST(WelchT, DegenerateContracts) {
  // n = 1 on either side: variance is not estimable -> invalid, p = 1.
  EXPECT_FALSE(welch_t_test({1.0}, {2.0, 3.0}).valid);
  EXPECT_FALSE(welch_t_test({1.0, 2.0}, {3.0}).valid);
  EXPECT_FALSE(welch_t_test({}, {}).valid);
  EXPECT_DOUBLE_EQ(welch_t_test({1.0}, {2.0}).p, 1.0);

  // Zero variance on both sides, equal means: exact agreement.
  TestResult same = welch_t_test({5.0, 5.0, 5.0}, {5.0, 5.0});
  ASSERT_TRUE(same.valid);
  EXPECT_DOUBLE_EQ(same.statistic, 0.0);
  EXPECT_DOUBLE_EQ(same.p, 1.0);

  // Zero variance, different means: the difference is exact.
  TestResult diff = welch_t_test({5.0, 5.0}, {6.0, 6.0});
  ASSERT_TRUE(diff.valid);
  EXPECT_EQ(diff.statistic, kInf);
  EXPECT_DOUBLE_EQ(diff.p, 0.0);
  TestResult diff_down = welch_t_test({6.0, 6.0}, {5.0, 5.0});
  EXPECT_EQ(diff_down.statistic, -kInf);
  EXPECT_DOUBLE_EQ(diff_down.p, 0.0);
}

TEST(TwoProportionZ, ReferenceValues) {
  // 45/100 vs 30/100: z = -2.1909, p = 0.02846.
  TestResult r = two_proportion_z_test(45, 100, 30, 100);
  ASSERT_TRUE(r.valid);
  EXPECT_NEAR(r.statistic, -2.19089023002, 1e-9);
  EXPECT_NEAR(r.p, 0.0284597369163, 1e-12);

  // The CI doctored-baseline shape: 0/100 vs 3/4 is overwhelming.
  TestResult r2 = two_proportion_z_test(0, 100, 3, 4);
  ASSERT_TRUE(r2.valid);
  EXPECT_NEAR(r2.statistic, 8.78793051704, 1e-9);
  EXPECT_NEAR(r2.p, 1.5234013826e-18, 1e-27);
}

TEST(TwoProportionZ, DegenerateContracts) {
  // Empty samples: invalid, conservative p.
  EXPECT_FALSE(two_proportion_z_test(0, 0, 1, 2).valid);
  EXPECT_FALSE(two_proportion_z_test(1, 2, 0, 0).valid);
  EXPECT_DOUBLE_EQ(two_proportion_z_test(0, 0, 0, 0).p, 1.0);
  // successes > n is corrupt input, never a verdict.
  EXPECT_FALSE(two_proportion_z_test(5, 4, 1, 4).valid);

  // All-success on both sides (pooled proportion 1): exact agreement.
  TestResult all = two_proportion_z_test(4, 4, 100, 100);
  ASSERT_TRUE(all.valid);
  EXPECT_DOUBLE_EQ(all.statistic, 0.0);
  EXPECT_DOUBLE_EQ(all.p, 1.0);
  // All-failure likewise.
  TestResult none = two_proportion_z_test(0, 7, 0, 3);
  ASSERT_TRUE(none.valid);
  EXPECT_DOUBLE_EQ(none.p, 1.0);
}

TEST(KsTest, StatisticAndAsymptoticP) {
  // D computed by hand over the step functions; p from an independent
  // python evaluation of the Kolmogorov series + Stephens correction.
  TestResult r = ks_test({1, 2, 3, 4}, {3, 4, 5, 6});
  ASSERT_TRUE(r.valid);
  EXPECT_DOUBLE_EQ(r.statistic, 0.5);
  EXPECT_NEAR(r.p, 0.534415719217, 1e-9);

  TestResult r2 = ks_test({0.0, 0.1, 0.2, 0.9, 1.0, 1.4},
                          {0.8, 1.1, 1.2, 1.3, 1.9});
  ASSERT_TRUE(r2.valid);
  EXPECT_NEAR(r2.statistic, 0.633333333333, 1e-12);
  EXPECT_NEAR(r2.p, 0.132999657784, 1e-9);

  // Unsorted input is the caller's normal case.
  TestResult r3 = ks_test({4, 1, 3, 2}, {6, 3, 5, 4});
  EXPECT_DOUBLE_EQ(r3.statistic, 0.5);
}

TEST(KsTest, DegenerateContracts) {
  EXPECT_FALSE(ks_test({}, {1.0}).valid);
  EXPECT_FALSE(ks_test({1.0}, {}).valid);
  // Identical samples: D = 0, p = 1.
  TestResult same = ks_test({1, 2, 3}, {1, 2, 3});
  ASSERT_TRUE(same.valid);
  EXPECT_DOUBLE_EQ(same.statistic, 0.0);
  EXPECT_DOUBLE_EQ(same.p, 1.0);
  // Disjoint supports: D = 1, p near 0 for large n.
  TestResult disjoint = ks_test({1, 1, 1, 1, 1, 1, 1, 1},
                                {9, 9, 9, 9, 9, 9, 9, 9});
  EXPECT_DOUBLE_EQ(disjoint.statistic, 1.0);
  EXPECT_LT(disjoint.p, 1e-3);
}

TEST(WilsonInterval, ZeroTrialsIsTheVacuousInterval) {
  // "No information yet" must render as [0, 1], never as a confident
  // [0, 0]: a progress display polling before the first trial completes
  // would otherwise show "certainly 0% success". Both the explicit return
  // and the struct defaults pin this.
  const WilsonInterval vacuous = wilson_interval(0, 0);
  EXPECT_DOUBLE_EQ(vacuous.low, 0.0);
  EXPECT_DOUBLE_EQ(vacuous.high, 1.0);
  const WilsonInterval defaults{};
  EXPECT_DOUBLE_EQ(defaults.low, 0.0);
  EXPECT_DOUBLE_EQ(defaults.high, 1.0);
  // Nonsense input (successes > trials) degrades to vacuous too.
  const WilsonInterval nonsense = wilson_interval(5, 2);
  EXPECT_DOUBLE_EQ(nonsense.low, 0.0);
  EXPECT_DOUBLE_EQ(nonsense.high, 1.0);
}

TEST(WilsonInterval, ZeroSuccessesIsNeverConfidentlyZero) {
  // 0/n is real information, but its upper bound must stay strictly
  // positive — the CI shrinks toward zero with n without ever touching it.
  double prev_high = 1.0;
  for (u64 n : {1ull, 4ull, 16ull, 256ull, 65536ull}) {
    const WilsonInterval w = wilson_interval(0, n);
    EXPECT_DOUBLE_EQ(w.low, 0.0);
    EXPECT_GT(w.high, 0.0) << "n=" << n;
    EXPECT_LT(w.high, prev_high) << "n=" << n;
    prev_high = w.high;
  }
}

}  // namespace
}  // namespace dnstime
