#include "common/buffer.h"

#include <gtest/gtest.h>

#include <numeric>
#include <utility>

#include "common/bytes.h"
#include "common/rng.h"

namespace dnstime {
namespace {

Bytes pattern(std::size_t n, u8 start = 0) {
  Bytes b(n);
  std::iota(b.begin(), b.end(), start);
  return b;
}

TEST(BufferPool, ReusesBlocksBySizeClass) {
  BufferPool& pool = BufferPool::local();
  u64 hits_before = pool.stats().pool_hits;
  u64 outstanding_before = pool.outstanding();
  {
    PacketBuf a = PacketBuf::copy_of(pattern(100));
    EXPECT_EQ(pool.outstanding(), outstanding_before + 1);
  }
  EXPECT_EQ(pool.outstanding(), outstanding_before);
  {
    // Same size class (128) -> must come from the free list.
    PacketBuf b = PacketBuf::copy_of(pattern(90));
    EXPECT_EQ(pool.stats().pool_hits, hits_before + 1);
  }
  EXPECT_EQ(pool.outstanding(), outstanding_before);
}

TEST(BufferPool, OversizeRequestsBypassTheCache) {
  BufferPool& pool = BufferPool::local();
  u64 oversize_before = pool.stats().oversize_allocs;
  u64 cached_before = pool.stats().cached_blocks;
  {
    PacketBuf big = PacketBuf::uninitialized((1u << 17) + 1);
    EXPECT_EQ(pool.stats().oversize_allocs, oversize_before + 1);
  }
  EXPECT_EQ(pool.stats().cached_blocks, cached_before);  // freed, not parked
}

TEST(PacketBuf, CopyAliasesAndMutationCopiesOnWrite) {
  PacketBuf a = PacketBuf::copy_of(pattern(32));
  PacketBuf b = a;  // alias
  EXPECT_FALSE(a.unique());
  EXPECT_EQ(static_cast<const PacketBuf&>(a).data(),
            static_cast<const PacketBuf&>(b).data());

  b[0] = 0xEE;  // must not be visible through `a`
  EXPECT_TRUE(b.unique());
  EXPECT_TRUE(a.unique());
  EXPECT_EQ(a[0], 0);
  EXPECT_EQ(b[0], 0xEE);
}

TEST(PacketBuf, SliceSharesBytesWithParent) {
  PacketBuf parent = PacketBuf::copy_of(pattern(64));
  PacketBuf mid = parent.slice(16, 24);
  EXPECT_EQ(mid.size(), 24u);
  EXPECT_EQ(static_cast<const PacketBuf&>(mid).data(),
            static_cast<const PacketBuf&>(parent).data() + 16);
  EXPECT_EQ(mid, pattern(24, 16));
  EXPECT_THROW((void)parent.slice(60, 8), std::out_of_range);
  // Dropping the parent keeps the slice's block alive.
  parent = PacketBuf{};
  EXPECT_EQ(mid, pattern(24, 16));
}

TEST(PacketBuf, RemovePrefixIsOffsetArithmetic) {
  PacketBuf buf = PacketBuf::copy_of(pattern(40));
  const u8* before = static_cast<const PacketBuf&>(buf).data();
  buf.remove_prefix(8);
  EXPECT_EQ(static_cast<const PacketBuf&>(buf).data(), before + 8);
  EXPECT_EQ(buf.size(), 32u);
  EXPECT_EQ(buf[0], 8);
  EXPECT_THROW(buf.remove_prefix(33), std::out_of_range);
}

TEST(PacketBuf, PrependUsesHeadroomInPlace) {
  PacketBuf buf = PacketBuf::copy_of(pattern(16), /*headroom=*/8);
  EXPECT_EQ(buf.headroom(), 8u);
  const u8* body = static_cast<const PacketBuf&>(buf).data();
  u8* hdr = buf.prepend(8);
  EXPECT_EQ(hdr, body - 8);  // in place, no copy
  for (int i = 0; i < 8; ++i) hdr[i] = 0xA0;
  EXPECT_EQ(buf.size(), 24u);
  EXPECT_EQ(buf[8], 0);
  EXPECT_EQ(buf.headroom(), 0u);
}

TEST(PacketBuf, PrependWithoutHeadroomReallocates) {
  PacketBuf buf = PacketBuf::copy_of(pattern(16), /*headroom=*/0);
  u8* hdr = buf.prepend(8);
  for (int i = 0; i < 8; ++i) hdr[i] = 0xB0;
  EXPECT_EQ(buf.size(), 24u);
  EXPECT_EQ(buf[7], 0xB0);
  EXPECT_EQ(buf[8], 0);
  EXPECT_EQ(buf[23], 15);
}

TEST(PacketBuf, PrependOnSharedBufferDoesNotDisturbAlias) {
  PacketBuf a = PacketBuf::copy_of(pattern(16), /*headroom=*/8);
  PacketBuf b = a;
  u8* hdr = b.prepend(4);
  for (int i = 0; i < 4; ++i) hdr[i] = 0xCC;
  EXPECT_EQ(a, pattern(16));  // untouched
  EXPECT_EQ(b.size(), 20u);
  EXPECT_EQ(b[4], 0);
}

TEST(PacketBuf, ResizeAndAssignAreVectorCompatible) {
  PacketBuf buf;
  buf.resize(10);
  EXPECT_EQ(buf, Bytes(10, 0));  // growth zero-fills
  buf.assign(5, 0x77);
  EXPECT_EQ(buf, Bytes(5, 0x77));
  buf.resize(2);
  EXPECT_EQ(buf, Bytes(2, 0x77));
  // Growth of a shared buffer must not disturb the alias.
  PacketBuf alias = buf;
  buf.resize(4);
  EXPECT_EQ(alias, Bytes(2, 0x77));
  EXPECT_EQ(buf[0], 0x77);
  EXPECT_EQ(buf[3], 0);
}

TEST(PacketBuf, ComparesWithBytesBothWays) {
  PacketBuf buf{1, 2, 3};
  Bytes same{1, 2, 3};
  Bytes different{1, 2, 4};
  EXPECT_TRUE(buf == same);
  EXPECT_TRUE(same == buf);
  EXPECT_FALSE(buf == different);
  EXPECT_EQ(buf.to_bytes(), same);
}

TEST(BufView, ViewsWithoutOwning) {
  Bytes storage = pattern(20);
  BufView v(storage);
  EXPECT_EQ(v.size(), 20u);
  EXPECT_EQ(v[3], 3);
  EXPECT_EQ(v.subview(4, 4).to_bytes(), pattern(4, 4));
  EXPECT_THROW((void)v.subview(18, 4), std::out_of_range);
  std::span<const u8> s = v;  // implicit span conversion for decoders
  EXPECT_EQ(s.size(), 20u);
  EXPECT_TRUE(v == BufView(storage));
}

TEST(ByteWriter, TakeBufPreservesHeadroomForPrepend) {
  ByteWriter w;
  w.write_u32(0xDEADBEEF);
  PacketBuf buf = std::move(w).take_buf();
  EXPECT_EQ(buf.size(), 4u);
  EXPECT_GE(buf.headroom(), kPacketHeadroom);
  const u8* body = static_cast<const PacketBuf&>(buf).data();
  u8* hdr = buf.prepend(8);
  EXPECT_EQ(hdr, body - 8);  // zero-copy prepend into the writer's headroom
}

TEST(ByteWriter, GrowsAcrossSizeClasses) {
  ByteWriter w;
  Bytes expect;
  Rng rng{99};
  for (int i = 0; i < 5000; ++i) {
    u8 b = static_cast<u8>(rng.uniform(0, 255));
    w.write_u8(b);
    expect.push_back(b);
  }
  EXPECT_EQ(std::move(w).take(), expect);
}

TEST(ByteWriter, TakeAndTakeBufAgree) {
  auto build = [](ByteWriter& w) {
    w.write_u16(0xABCD);
    w.write_bytes(Bytes{1, 2, 3, 4, 5});
    w.patch_u16(0, 0x1234);
  };
  ByteWriter a;
  build(a);
  ByteWriter b;
  build(b);
  EXPECT_EQ(std::move(b).take_buf(), std::move(a).take());
}

TEST(BufferPool, LeakInstrumentationSeesUnreleasedBuffers) {
  BufferPool& pool = BufferPool::local();
  u64 before = pool.outstanding();
  PacketBuf held = PacketBuf::copy_of(pattern(64));
  EXPECT_EQ(pool.outstanding(), before + 1);
  PacketBuf alias = held;  // same block: still one outstanding
  EXPECT_EQ(pool.outstanding(), before + 1);
  alias = PacketBuf{};
  held = PacketBuf{};
  EXPECT_EQ(pool.outstanding(), before);
}

}  // namespace
}  // namespace dnstime
