// BufferPool statistics: per-size-class accounting on the acquire/release
// path and process-wide aggregation across pools, including pools whose
// owning threads have already exited.
#include "common/buffer.h"

#include <gtest/gtest.h>

#include <thread>

namespace dnstime {
namespace {

TEST(BufferPoolStats, PerClassAccounting) {
  BufferPool pool;
  // 100 bytes rounds up to the 128-byte class (index 1: 64 << 1).
  BufferPool::Block* b = pool.acquire(100);
  {
    const BufferPool::Stats& s = pool.stats();
    EXPECT_EQ(s.fresh_allocs, 1u);
    EXPECT_EQ(s.outstanding, 1u);
    EXPECT_EQ(s.classes[1].fresh_allocs, 1u);
    EXPECT_EQ(s.classes[1].outstanding, 1u);
    EXPECT_EQ(s.classes[0].fresh_allocs, 0u);
  }
  pool.release(b);
  {
    const BufferPool::Stats& s = pool.stats();
    EXPECT_EQ(s.outstanding, 0u);
    EXPECT_EQ(s.classes[1].outstanding, 0u);
    EXPECT_EQ(s.classes[1].cached_blocks, 1u);
    EXPECT_EQ(s.classes[1].cached_bytes, 128u);
  }
  // Same class again: must be a pool hit, not a fresh allocation.
  BufferPool::Block* b2 = pool.acquire(128);
  {
    const BufferPool::Stats& s = pool.stats();
    EXPECT_EQ(s.pool_hits, 1u);
    EXPECT_EQ(s.classes[1].pool_hits, 1u);
    EXPECT_EQ(s.classes[1].cached_blocks, 0u);
    EXPECT_EQ(s.classes[1].cached_bytes, 0u);
  }
  pool.release(b2);
}

TEST(BufferPoolStats, OversizeBypassesClasses) {
  BufferPool pool;
  const std::size_t oversize =
      (std::size_t{1} << BufferPool::kMaxClassShift) + 1;
  BufferPool::Block* b = pool.acquire(oversize);
  {
    const BufferPool::Stats& s = pool.stats();
    EXPECT_EQ(s.oversize_allocs, 1u);
    EXPECT_EQ(s.outstanding, 1u);
    for (const BufferPool::Stats::PerClass& pc : s.classes) {
      EXPECT_EQ(pc.fresh_allocs, 0u);
      EXPECT_EQ(pc.outstanding, 0u);
    }
  }
  pool.release(b);
  const BufferPool::Stats& s = pool.stats();
  EXPECT_EQ(s.outstanding, 0u);
  EXPECT_EQ(s.cached_blocks, 0u);  // oversize blocks are never cached
}

TEST(BufferPoolStats, TrimZeroesCachedIncludingPerClass) {
  BufferPool pool;
  pool.release(pool.acquire(64));
  pool.release(pool.acquire(4096));
  EXPECT_EQ(pool.stats().cached_blocks, 2u);
  pool.trim();
  EXPECT_EQ(pool.stats().cached_blocks, 0u);
  EXPECT_EQ(pool.stats().cached_bytes, 0u);
  for (const BufferPool::Stats::PerClass& pc : pool.stats().classes) {
    EXPECT_EQ(pc.cached_blocks, 0u);
    EXPECT_EQ(pc.cached_bytes, 0u);
  }
}

TEST(BufferPoolStats, AggregateSpansLiveAndRetiredPools) {
  const BufferPool::Stats before = BufferPool::aggregate_stats();

  // A worker thread whose pool traffic goes through BufferPool::local(),
  // then exits: its thread_local pool destructs and folds into the
  // registry's retired accumulator.
  std::thread worker([] {
    for (int i = 0; i < 10; ++i) {
      BufferPool::local().release(BufferPool::local().acquire(512));
    }
  });
  worker.join();

  // A live pool on this thread contributes too.
  BufferPool live;
  BufferPool::Block* b = live.acquire(512);

  const BufferPool::Stats after = BufferPool::aggregate_stats();
  // 1 fresh alloc + 9 hits on the worker, 1 fresh on the live pool.
  EXPECT_EQ(after.fresh_allocs - before.fresh_allocs, 2u);
  EXPECT_EQ(after.pool_hits - before.pool_hits, 9u);
  EXPECT_EQ(after.outstanding - before.outstanding, 1u);
  const std::size_t cls512 = 3;  // 64 << 3 = 512
  EXPECT_EQ(after.classes[cls512].fresh_allocs -
                before.classes[cls512].fresh_allocs,
            2u);
  live.release(b);
}

}  // namespace
}  // namespace dnstime
