// Registry contracts: per-thread sharding sums exactly, histograms merge
// semantically (min/max survive the retired-shard fold), snapshots are
// name-sorted, and counters recorded by threads that have exited are not
// lost.
#include "obs/counters.h"

#include <gtest/gtest.h>

#include <string>
#include <thread>
#include <vector>

namespace dnstime::obs {
namespace {

TEST(Registry, CounterSumsAcrossThreads) {
  Registry& reg = Registry::instance();
  reg.reset();
  const Registry::Id id = reg.counter_id("test.sum");
  constexpr int kThreads = 8;
  constexpr u64 kPerThread = 10000;
  std::vector<std::thread> pool;
  for (int t = 0; t < kThreads; ++t) {
    pool.emplace_back([&reg, id] {
      for (u64 i = 0; i < kPerThread; ++i) reg.add(id, 1);
    });
  }
  for (auto& t : pool) t.join();
  reg.add(id, 5);
  EXPECT_EQ(reg.snapshot().counter("test.sum"), kThreads * kPerThread + 5);
}

TEST(Registry, MacrosResolveAndBump) {
  Registry::instance().reset();
  for (int i = 0; i < 3; ++i) DNSTIME_COUNT("test.macro");
  DNSTIME_COUNT_ADD("test.macro", 7);
  Snapshot snap = Registry::instance().snapshot();
#if DNSTIME_OBS
  EXPECT_EQ(snap.counter("test.macro"), 10u);
#else
  EXPECT_EQ(snap.counter("test.macro"), 0u);
#endif
}

TEST(Registry, CounterAbsentReadsZero) {
  EXPECT_EQ(Registry::instance().snapshot().counter("test.never-touched"),
            0u);
}

TEST(Registry, SameTagSameIdAcrossCalls) {
  Registry& reg = Registry::instance();
  EXPECT_EQ(reg.counter_id("test.interned"), reg.counter_id("test.interned"));
  EXPECT_NE(reg.counter_id("test.interned"), reg.counter_id("test.other"));
}

TEST(Registry, HistogramRecordsCountSumMinMaxBuckets) {
  Registry& reg = Registry::instance();
  reg.reset();
  const Registry::Id id = reg.histogram_id("test.hist");
  for (u64 v : {u64{0}, u64{1}, u64{5}, u64{5}, u64{1000}}) reg.record(id, v);
  Snapshot snap = reg.snapshot();
  const HistogramData* h = snap.histogram("test.hist");
  ASSERT_NE(h, nullptr);
  EXPECT_EQ(h->count, 5u);
  EXPECT_EQ(h->sum, 1011u);
  EXPECT_EQ(h->min, 0u);
  EXPECT_EQ(h->max, 1000u);
  // Log2 buckets: value 0 and 1 land in bucket 0, 5 in bucket 2 (bit
  // width 3 - 1), 1000 in bucket 9.
  EXPECT_EQ(h->buckets[0], 2u);
  EXPECT_EQ(h->buckets[2], 2u);
  EXPECT_EQ(h->buckets[9], 1u);
}

TEST(Registry, HistogramMinSurvivesThreadExit) {
  Registry& reg = Registry::instance();
  reg.reset();
  const Registry::Id id = reg.histogram_id("test.hist-retired");
  // The small sample is recorded on a thread that exits (folding its shard
  // into the retired accumulator) before the large sample is recorded
  // live: a naive additive fold would destroy min/max.
  std::thread t([&reg, id] { reg.record(id, 3); });
  t.join();
  reg.record(id, 900);
  const Snapshot snap = reg.snapshot();
  const HistogramData* h = snap.histogram("test.hist-retired");
  ASSERT_NE(h, nullptr);
  EXPECT_EQ(h->count, 2u);
  EXPECT_EQ(h->min, 3u);
  EXPECT_EQ(h->max, 900u);
}

TEST(Registry, CountsFromExitedThreadsAreRetained) {
  Registry& reg = Registry::instance();
  reg.reset();
  const Registry::Id id = reg.counter_id("test.retired");
  {
    std::thread t([&reg, id] { reg.add(id, 41); });
    t.join();
  }
  EXPECT_EQ(reg.snapshot().counter("test.retired"), 41u);
}

TEST(Registry, ResetZeroesLiveAndRetired) {
  Registry& reg = Registry::instance();
  const Registry::Id id = reg.counter_id("test.reset");
  reg.add(id, 9);
  std::thread t([&reg, id] { reg.add(id, 9); });
  t.join();
  reg.reset();
  EXPECT_EQ(reg.snapshot().counter("test.reset"), 0u);
}

TEST(Snapshot, JsonIsNameSortedAndStable) {
  Registry& reg = Registry::instance();
  reg.reset();
  reg.add(reg.counter_id("test.zz"), 2);
  reg.add(reg.counter_id("test.aa"), 1);
  reg.record(reg.histogram_id("test.h"), 4);
  const std::string a = reg.snapshot().to_json();
  const std::string b = reg.snapshot().to_json();
  EXPECT_EQ(a, b);
  // Sorted: test.aa before test.zz regardless of registration order.
  EXPECT_LT(a.find("\"test.aa\":1"), a.find("\"test.zz\":2"));
  EXPECT_NE(a.find("\"histograms\":{"), std::string::npos);
  EXPECT_NE(a.find("\"test.h\":{\"count\":1,\"sum\":4"), std::string::npos);
}

TEST(Snapshot, TableRendersEveryTag) {
  Registry& reg = Registry::instance();
  reg.reset();
  reg.add(reg.counter_id("test.table"), 12);
  reg.record(reg.histogram_id("test.table-hist"), 7);
  const std::string table = reg.snapshot().to_table();
  EXPECT_NE(table.find("test.table"), std::string::npos);
  EXPECT_NE(table.find("test.table-hist"), std::string::npos);
}

}  // namespace
}  // namespace dnstime::obs
