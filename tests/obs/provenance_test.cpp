// FlightRecorder contracts: deterministic stamps (pure function of the
// trial seed), ring bounds with chain points surviving overwrite, the
// causal-chain reached/broke_at semantics, tainted-peer steering, and the
// byte-pinned attack-narrative JSON that makes a runner dump and a
// tools/attack_narrative replay byte-identical.
#include "obs/provenance.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "common/buffer.h"
#include "common/origin.h"

namespace dnstime::obs {
namespace {

FlightRecorder::DumpContext failed_result(std::string error = "") {
  FlightRecorder::DumpContext ctx;
  ctx.has_result = true;
  ctx.success = false;
  ctx.duration_s = 12.5;
  ctx.error = std::move(error);
  return ctx;
}

TEST(FlightRecorder, StampSequenceIsAPureFunctionOfTheTrialSeed) {
  FlightRecorder a, b, c;
  a.set_meta("s", 1, 0, 0xABCD);
  b.set_meta("s", 1, 0, 0xABCD);
  c.set_meta("s", 1, 0, 0xABCE);  // different trial seed
  std::vector<u32> seqs_a, seqs_b, seqs_c;
  for (int i = 0; i < 64; ++i) {
    seqs_a.push_back(a.stamp(i, OriginModule::kAttacker).seq);
    seqs_b.push_back(b.stamp(i, OriginModule::kAttacker).seq);
    seqs_c.push_back(c.stamp(i, OriginModule::kAttacker).seq);
  }
  EXPECT_EQ(seqs_a, seqs_b);
  EXPECT_NE(seqs_a, seqs_c);
  // 0 means "unstamped", so stamp() never hands it out.
  for (u32 s : seqs_a) EXPECT_NE(s, 0u);
  EXPECT_EQ(a.stamps(), 64u);
}

TEST(FlightRecorder, StampCarriesModuleFlagsAndSimTime) {
  FlightRecorder fr;
  fr.set_meta("s", 1, 0, 7);
  Origin o = fr.stamp(1234, OriginModule::kAttackerNs, Origin::kSpoofed);
  EXPECT_EQ(o.ts_ns, 1234);
  EXPECT_EQ(o.module, OriginModule::kAttackerNs);
  EXPECT_TRUE(o.spoofed());
  EXPECT_FALSE(o.reassembled());
}

TEST(FlightRecorder, RingBoundsEventsButChainPointsSurviveOverwrite) {
  FlightRecorder fr;
  fr.set_meta("s", 1, 0, 7);
  // The interesting event lands first...
  Origin spoofed = fr.stamp(100, OriginModule::kAttacker, Origin::kSpoofed);
  fr.cache_insert(100, spoofed, "pool.ntp.org");
  // ...then a long trial scrolls it out of the ring entirely.
  const std::size_t total = FlightRecorder::kRingCapacity + 500;
  for (std::size_t i = 0; i < total; ++i) {
    fr.phase(static_cast<i64>(200 + i), "poll");
  }
  EXPECT_EQ(fr.size(), FlightRecorder::kRingCapacity);
  EXPECT_EQ(fr.recorded(), total + 1);
  EXPECT_EQ(fr.overwritten(), 501u);

  // The ring's oldest surviving event is a phase marker, not the insert...
  std::vector<FlightRecorder::Event> events = fr.events_in_order();
  ASSERT_EQ(events.size(), FlightRecorder::kRingCapacity);
  EXPECT_EQ(events.front().kind, ProvKind::kPhase);
  for (std::size_t i = 1; i < events.size(); ++i) {
    EXPECT_EQ(events[i].seq, events[i - 1].seq + 1);  // oldest-to-newest
  }
  // ...but the chain point still names the poisoning packet and key.
  const FlightRecorder::ChainPoint& cp =
      fr.chain(ChainStage::kCachePoisoned);
  EXPECT_EQ(cp.count, 1u);
  EXPECT_EQ(cp.first_seq, 1u);
  EXPECT_EQ(cp.first_ref_seq, spoofed.seq);
  EXPECT_STREQ(cp.detail, "pool.ntp.org");
  const std::string json = fr.to_json(failed_result());
  EXPECT_NE(json.find("\"stage\":\"cache-poisoned\",\"count\":1"),
            std::string::npos);
  EXPECT_NE(json.find("\"overwritten\":501"), std::string::npos);
}

TEST(FlightRecorder, ChainReachedIsTheLongestContiguousPrefix) {
  FlightRecorder fr;
  fr.set_meta("s", 1, 0, 7);
  // Nothing recorded: the chain never started.
  EXPECT_EQ(fr.chain_reached(false), nullptr);
  EXPECT_STREQ(fr.chain_broke_at(false), "pmtu-reduced");

  fr.pmtu_reduced(10, OriginModule::kVictim, 296, 0x0A000001);
  EXPECT_STREQ(fr.chain_reached(false), "pmtu-reduced");
  EXPECT_STREQ(fr.chain_broke_at(false), "spoofed-fragments-injected");

  Origin spoofed = fr.stamp(20, OriginModule::kAttacker, Origin::kSpoofed);
  fr.spoofed_inject(20, spoofed, 0x4242, 8);
  Origin merged = spoofed;
  merged.flags |= Origin::kReassembled;
  fr.reassembled(30, merged, 1172, 5);
  fr.cache_insert(40, merged, "pool.ntp.org");
  EXPECT_STREQ(fr.chain_reached(false), "cache-poisoned");
  EXPECT_STREQ(fr.chain_broke_at(false), "poisoned-answer-served");

  // A gap does not extend the prefix: steering a peer without ever having
  // served the poisoned answer still reports the break at the gap.
  fr.add_tainted(0x0A000002);
  fr.peer_adopted(50, OriginModule::kVictim, 0x0A000002);
  EXPECT_STREQ(fr.chain_reached(false), "cache-poisoned");
  EXPECT_STREQ(fr.chain_broke_at(false), "poisoned-answer-served");

  fr.poisoned_served(60, merged, "pool.ntp.org");
  EXPECT_STREQ(fr.chain_reached(false), "ntp-peer-steered");
  EXPECT_STREQ(fr.chain_broke_at(false), "clock-shifted");
  // The final stage is decided by the trial outcome at dump time.
  EXPECT_STREQ(fr.chain_reached(true), "clock-shifted");
  EXPECT_EQ(fr.chain_broke_at(true), nullptr);
}

TEST(FlightRecorder, LegitimateEventsDoNotAdvanceTheAttackChain) {
  FlightRecorder fr;
  fr.set_meta("s", 1, 0, 7);
  Origin legit = fr.stamp(10, OriginModule::kNameserver);
  Origin merged = legit;
  merged.flags |= Origin::kReassembled;
  fr.reassembled(20, merged, 900, 3);
  fr.cache_insert(30, merged, "pool.ntp.org");
  fr.peer_adopted(40, OriginModule::kVictim, 0x0A000002);  // not tainted
  EXPECT_EQ(fr.chain_reached(false), nullptr);
  EXPECT_EQ(fr.chain(ChainStage::kReasmSpoofed).count, 0u);
  EXPECT_EQ(fr.chain(ChainStage::kCachePoisoned).count, 0u);
  EXPECT_EQ(fr.chain(ChainStage::kPeerSteered).count, 0u);
  // The context events were still recorded for the narrative timeline.
  EXPECT_EQ(fr.size(), 3u);
}

TEST(FlightRecorder, TaintedPeerAdoptionCountsAsSteering) {
  FlightRecorder fr;
  fr.set_meta("s", 1, 0, 7);
  fr.add_tainted(0xC6336401);
  EXPECT_TRUE(fr.is_tainted(0xC6336401));
  EXPECT_FALSE(fr.is_tainted(0xC6336402));
  fr.peer_adopted(10, OriginModule::kVictim, 0xC6336401);
  fr.peer_selected(20, OriginModule::kVictim, 0xC6336401);
  EXPECT_EQ(fr.chain(ChainStage::kPeerSteered).count, 2u);
  // The detail labels the simulated address dotted-quad.
  EXPECT_STREQ(fr.chain(ChainStage::kPeerSteered).detail, "198.51.100.1");
}

TEST(FlightRecorder, NarrativeJsonIsBytePinned) {
  FlightRecorder fr;
  fr.set_meta("table2/\"q\"", 41, 3, 99);
  fr.phase(0, "poison");
  FlightRecorder::DumpContext ctx;
  ctx.has_result = true;
  ctx.success = true;
  ctx.duration_s = 1.5;
  ctx.clock_shift_s = -500.0;
  const std::string json = fr.to_json(ctx);
  EXPECT_EQ(
      json,
      "{\"narrative\":{\"scenario\":\"table2/\\\"q\\\"\","
      "\"campaign_seed\":41,\"trial\":3,\"trial_seed\":99,"
      "\"result\":{\"success\":true,\"duration_s\":1.5,"
      "\"clock_shift_s\":-500,\"error\":\"\"},"
      "\"chain\":{\"reached\":null,\"broke_at\":\"pmtu-reduced\","
      "\"stages\":["
      "{\"stage\":\"pmtu-reduced\",\"count\":0},"
      "{\"stage\":\"spoofed-fragments-injected\",\"count\":0},"
      "{\"stage\":\"reassembled-with-spoofed\",\"count\":0},"
      "{\"stage\":\"cache-poisoned\",\"count\":0},"
      "{\"stage\":\"poisoned-answer-served\",\"count\":0},"
      "{\"stage\":\"ntp-peer-steered\",\"count\":0},"
      "{\"stage\":\"clock-shifted\",\"count\":1}]},"
      "\"ring\":{\"capacity\":4096,\"recorded\":1,\"held\":1,"
      "\"overwritten\":0,\"stamps\":0},"
      "\"events\":[{\"n\":1,\"ts\":0.000,\"kind\":\"phase\","
      "\"module\":\"unknown\",\"detail\":\"poison\"}]}}");
  // No trailing newline: the runner's dump file and the CLI replay
  // compare with cmp(1).
  EXPECT_NE(json.back(), '\n');
  // A chain reached only through ctx.success must not claim the shift
  // when the trial failed.
  EXPECT_NE(fr.to_json(failed_result()).find(
                "{\"stage\":\"clock-shifted\",\"count\":0}"),
            std::string::npos);
}

TEST(FlightRecorder, ErrorEventKeepsTheLastSimTimestamp) {
  FlightRecorder fr;
  fr.set_meta("s", 1, 0, 7);
  fr.phase(5000, "attack");
  fr.error("resolver wedged");
  std::vector<FlightRecorder::Event> events = fr.events_in_order();
  ASSERT_EQ(events.size(), 2u);
  EXPECT_EQ(events[1].kind, ProvKind::kError);
  EXPECT_EQ(events[1].ts_ns, 5000);
  EXPECT_STREQ(events[1].detail, "resolver wedged");
}

TEST(FlightRecorder, DetailLabelsTruncateInsteadOfAllocating) {
  FlightRecorder fr;
  fr.set_meta("s", 1, 0, 7);
  fr.phase(0, "a-phase-name-much-longer-than-the-detail-slot");
  std::vector<FlightRecorder::Event> events = fr.events_in_order();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(std::string(events[0].detail),
            std::string("a-phase-name-much-longer-than-the-detail-slot")
                .substr(0, FlightRecorder::kDetailCapacity - 1));
}

TEST(ScopedFlightRecorder, InstallsAndRestores) {
  EXPECT_EQ(current_flight(), nullptr);
  FlightRecorder outer;
  {
    ScopedFlightRecorder a(&outer);
    EXPECT_EQ(current_flight(), &outer);
    FlightRecorder inner;
    {
      ScopedFlightRecorder b(&inner);
      EXPECT_EQ(current_flight(), &inner);
    }
    EXPECT_EQ(current_flight(), &outer);
  }
  EXPECT_EQ(current_flight(), nullptr);
}

TEST(ScopedFlightRecorder, MacrosAreInertWithoutARecorder) {
  PacketBuf buf = PacketBuf::copy_of(Bytes(8, 0x11));
  DNSTIME_PROV_STAMP(buf, 0, OriginModule::kAttacker, 0);
  DNSTIME_PROV_EVENT(phase(0, "nobody-listening"));
  EXPECT_EQ(buf.origin().seq, 0u);  // still unstamped

  FlightRecorder fr;
  fr.set_meta("s", 1, 0, 7);
  {
    ScopedFlightRecorder install(&fr);
    DNSTIME_PROV_STAMP(buf, 9, OriginModule::kAttacker, Origin::kSpoofed);
    DNSTIME_PROV_EVENT(phase(9, "recording"));
  }
#if DNSTIME_OBS
  EXPECT_NE(buf.origin().seq, 0u);
  EXPECT_TRUE(buf.origin().spoofed());
  EXPECT_EQ(fr.size(), 1u);
#else
  EXPECT_EQ(buf.origin().seq, 0u);
  EXPECT_EQ(fr.size(), 0u);
#endif
}

}  // namespace
}  // namespace dnstime::obs
