// The observability determinism contract at campaign level:
//  * a traced campaign writes byte-identical trace JSON at any thread
//    count, and tracing never changes the report;
//  * the metrics section is strictly additive — reports without it are
//    byte-identical to what the repo always produced, and reports with it
//    still parse in the diff harness.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <stdexcept>
#include <string>

#include "campaign/diff/report_reader.h"
#include "campaign/runner.h"
#include "campaign/trial.h"
#include "obs/trace.h"

namespace dnstime::campaign {
namespace {

std::string slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

std::string temp_path(const std::string& name) {
  return testing::TempDir() + name;
}

/// A World-free scenario whose trials emit trace events: the runner's
/// trace plumbing is exercised without simulation cost, and event content
/// depends only on ctx.seed so traces must agree across thread counts.
ScenarioSpec traced_synthetic(std::string name) {
  ScenarioSpec spec;
  spec.name = std::move(name);
  spec.attack = AttackKind::kCustom;
  spec.trial_fn = [](const ScenarioSpec&, const TrialContext& ctx) {
    const i64 base = static_cast<i64>(ctx.seed % 1000000);
    DNSTIME_TRACE_BEGIN(base, "trial", "work");
    DNSTIME_TRACE_INSTANT(base + 500, "trial", "step", ctx.trial);
    DNSTIME_TRACE_END(base + 1000, "trial", "work");
    TrialResult r;
    r.success = true;
    r.duration_s = static_cast<double>(ctx.seed % 100);
    return r;
  };
  return spec;
}

std::vector<ScenarioSpec> scenarios_with_real_attack() {
  std::vector<ScenarioSpec> scenarios;
  scenarios.push_back(traced_synthetic("synthetic/a"));
  scenarios.push_back(boot_time_scenario());
  scenarios.push_back(traced_synthetic("synthetic/b"));
  return scenarios;
}

TEST(TracedCampaign, TraceIsByteIdenticalAcrossThreadCounts) {
  const auto scenarios = scenarios_with_real_attack();
  // Flattened index 5 = scenario 1 (the real boot-time attack), trial 1:
  // the traced trial runs a full World so the trace carries the
  // instrumented attack-phase spans, not just synthetic events.
  const std::string path1 = temp_path("obs_trace_threads1.json");
  const std::string path8 = temp_path("obs_trace_threads8.json");
  CampaignConfig c1{.seed = 42, .trials = 4, .threads = 1};
  c1.trace_path = path1;
  c1.trace_index = 5;
  CampaignConfig c8 = c1;
  c8.threads = 8;
  c8.trace_path = path8;

  CampaignReport r1 = CampaignRunner(c1).run(scenarios);
  CampaignReport r8 = CampaignRunner(c8).run(scenarios);

  const std::string trace1 = slurp(path1);
  const std::string trace8 = slurp(path8);
  ASSERT_FALSE(trace1.empty());
  EXPECT_EQ(trace1, trace8);
#if DNSTIME_OBS
  // The traced boot-time trial carries the instrumented poison span and
  // its campaign identity.
  EXPECT_NE(trace1.find("\"name\":\"poison\""), std::string::npos);
  EXPECT_NE(trace1.find("\"scenario\":\"boot-time/ntpd\""),
            std::string::npos);
  EXPECT_NE(trace1.find("\"trial\":1"), std::string::npos);
#endif
  std::remove(path1.c_str());
  std::remove(path8.c_str());

  // Tracing must not perturb results: an untraced run agrees byte-for-byte.
  CampaignConfig plain{.seed = 42, .trials = 4, .threads = 2};
  CampaignReport rp = CampaignRunner(plain).run(scenarios);
  EXPECT_EQ(r1.to_json(), rp.to_json());
  EXPECT_EQ(r8.to_json(), rp.to_json());
}

TEST(TracedCampaign, OutOfRangeTraceIndexThrows) {
  std::vector<ScenarioSpec> scenarios{traced_synthetic("synthetic/x")};
  CampaignConfig config{.seed = 1, .trials = 2, .threads = 1};
  config.trace_path = temp_path("obs_trace_unused.json");
  config.trace_index = 2;  // valid indices: 0, 1
  EXPECT_THROW((void)CampaignRunner(config).run(scenarios),
               std::invalid_argument);
}

TEST(MetricsSection, AbsentByDefaultAndAdditive) {
  std::vector<ScenarioSpec> scenarios{traced_synthetic("synthetic/m")};
  CampaignConfig config{.seed = 9, .trials = 2, .threads = 1};
  CampaignReport report = CampaignRunner(config).run(scenarios);

  const std::string plain = report.to_json();
  EXPECT_EQ(plain.find("\"metrics\""), std::string::npos);
  EXPECT_EQ(plain, report.to_json(true, ""));

  const std::string with_metrics =
      report.to_json(true, "{\"counters\":{\"x\":1},\"histograms\":{}}");
  // Strictly additive: the metrics key lands at the tail, everything
  // before it is byte-identical to the plain serialisation.
  ASSERT_GT(with_metrics.size(), plain.size());
  EXPECT_EQ(with_metrics.substr(0, plain.size() - 1),
            plain.substr(0, plain.size() - 1));
  EXPECT_NE(with_metrics.find(",\"metrics\":{\"counters\":{\"x\":1}"),
            std::string::npos);
}

TEST(MetricsSection, DiffReaderParsesAndIgnoresMetrics) {
  std::vector<ScenarioSpec> scenarios{traced_synthetic("synthetic/d")};
  CampaignConfig config{.seed = 9, .trials = 2, .threads = 1};
  CampaignReport report = CampaignRunner(config).run(scenarios);

  const std::string metrics =
      "{\"counters\":{\"a\":1,\"b\":2},"
      "\"histograms\":{\"h\":{\"count\":1,\"sum\":4,\"min\":4,\"max\":4,"
      "\"buckets\":{\"2\":1}}},"
      "\"buffer_pool\":{\"pool_hits\":0,\"classes\":{}}}";
  CampaignReport parsed =
      diff::parse_report(report.to_json(true, metrics), "test");
  // The metrics block is skipped, not modelled: the parsed report matches
  // the metrics-free serialisation exactly.
  EXPECT_EQ(parsed.to_json(), report.to_json());

  // Unknown top-level keys other than "metrics" still fail hard.
  EXPECT_THROW(
      (void)diff::parse_report("{\"seed\":1,\"trials_per_scenario\":1,"
                               "\"scenarios\":[],\"mystery\":1}",
                               "test"),
      diff::ParseError);
}

}  // namespace
}  // namespace dnstime::campaign
