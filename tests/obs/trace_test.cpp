// TraceRecorder contracts: exact Chrome trace_event JSON (the format is
// part of the determinism story — byte-identical traces require
// byte-pinned rendering), scoped installation, and bounded capacity.
#include "obs/trace.h"

#include <gtest/gtest.h>

#include <string>

namespace dnstime::obs {
namespace {

TEST(TraceRecorder, EmptyTraceIsValidObjectFormat) {
  TraceRecorder rec;
  EXPECT_EQ(rec.to_json(),
            "{\"displayTimeUnit\":\"ms\","
            "\"otherData\":{\"clock\":\"sim\",\"dropped_events\":0},"
            "\"traceEvents\":[]}");
}

TEST(TraceRecorder, RendersSpansAndInstantsExactly) {
  TraceRecorder rec;
  rec.set_meta("table2/chrony", 41, 3);
  rec.begin(0, "trial", "poison");
  rec.instant(1234567, "attack", "spray", 16);
  rec.end(2000000000, "trial", "poison");
  EXPECT_EQ(
      rec.to_json(),
      "{\"displayTimeUnit\":\"ms\","
      "\"otherData\":{\"scenario\":\"table2/chrony\",\"seed\":41,"
      "\"trial\":3,\"clock\":\"sim\",\"dropped_events\":0},"
      "\"traceEvents\":["
      "{\"name\":\"poison\",\"cat\":\"trial\",\"ph\":\"B\",\"ts\":0.000,"
      "\"pid\":1,\"tid\":1},"
      "{\"name\":\"spray\",\"cat\":\"attack\",\"ph\":\"i\",\"ts\":1234.567,"
      "\"pid\":1,\"tid\":1,\"s\":\"t\",\"args\":{\"value\":16}},"
      "{\"name\":\"poison\",\"cat\":\"trial\",\"ph\":\"E\","
      "\"ts\":2000000.000,\"pid\":1,\"tid\":1}"
      "]}");
}

TEST(TraceRecorder, TimestampKeepsNanosecondDecimals) {
  TraceRecorder rec;
  rec.instant(1, "t", "a");      // 0.001 us
  rec.instant(999, "t", "b");    // 0.999 us
  rec.instant(1000, "t", "c");   // 1.000 us
  const std::string json = rec.to_json();
  EXPECT_NE(json.find("\"ts\":0.001"), std::string::npos);
  EXPECT_NE(json.find("\"ts\":0.999"), std::string::npos);
  EXPECT_NE(json.find("\"ts\":1.000"), std::string::npos);
}

TEST(TraceRecorder, MetaStringIsEscaped) {
  TraceRecorder rec;
  rec.set_meta("weird\"name\\", 1, 0);
  const std::string json = rec.to_json();
  EXPECT_NE(json.find("\"scenario\":\"weird\\\"name\\\\\""),
            std::string::npos);
}

TEST(TraceRecorder, CapacityBoundsDropsAndCounts) {
  TraceRecorder rec;
  const std::size_t over = TraceRecorder::kMaxEvents + 5;
  for (std::size_t i = 0; i < over; ++i) rec.instant(0, "t", "x");
  EXPECT_EQ(rec.size(), TraceRecorder::kMaxEvents);
  EXPECT_EQ(rec.dropped(), 5u);
  // The drop count surfaces in the metadata so a truncated trace is
  // never mistaken for a complete one.
  const std::string json = rec.to_json();
  EXPECT_NE(json.find("\"dropped_events\":5"), std::string::npos);
}

TEST(ScopedTrace, InstallsAndRestores) {
  EXPECT_EQ(current_trace(), nullptr);
  TraceRecorder outer;
  {
    ScopedTrace a(&outer);
    EXPECT_EQ(current_trace(), &outer);
    TraceRecorder inner;
    {
      ScopedTrace b(&inner);
      EXPECT_EQ(current_trace(), &inner);
    }
    EXPECT_EQ(current_trace(), &outer);
  }
  EXPECT_EQ(current_trace(), nullptr);
}

TEST(ScopedTrace, MacrosRecordOnlyWhileInstalled) {
  DNSTIME_TRACE_INSTANT(0, "t", "before");  // no recorder: must not crash
  TraceRecorder rec;
  {
    ScopedTrace install(&rec);
    DNSTIME_TRACE_BEGIN(0, "t", "span");
    DNSTIME_TRACE_INSTANT(5, "t", "tick", 2);
    DNSTIME_TRACE_END(10, "t", "span");
  }
  DNSTIME_TRACE_INSTANT(20, "t", "after");
#if DNSTIME_OBS
  EXPECT_EQ(rec.size(), 3u);
#else
  EXPECT_EQ(rec.size(), 0u);
#endif
}

}  // namespace
}  // namespace dnstime::obs
