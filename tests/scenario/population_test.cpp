// ClientPopulation: fleet-scale worlds must behave like the single-victim
// worlds, only wider. The pins here are the population contract:
// determinism across runs, a genuine shared-resolver poisoning that
// migrates with DNS TTL rollover, the rate-limit herd effect, and the
// <= 64 B/client memory budget.
#include "scenario/population.h"

#include <gtest/gtest.h>

#include <tuple>

#include "attack/cache_poisoner.h"

namespace dnstime::scenario {
namespace {

using sim::Duration;

PopulationConfig small_config(u32 clients, u64 seed) {
  PopulationConfig pc;
  pc.clients = clients;
  pc.seed = seed;
  return pc;
}

TEST(ClientPopulation, FleetSyncsToTrueTimeHonestly) {
  WorldConfig wc;
  wc.seed = 5;
  World world(wc);
  ClientPopulation pop(world, small_config(2'000, 5));
  // One poll interval plus DNS/exchange slack: every client has resolved
  // and disciplined at least once.
  world.run_for(Duration::seconds(90));
  EXPECT_EQ(pop.metrics().dns_queries, 1u)
      << "the whole fleet shares one in-flight resolver query";
  EXPECT_GT(pop.metrics().polls, 0u);
  EXPECT_GT(pop.metrics().exchanges, 0u);
  EXPECT_LT(pop.metrics().exchanges, pop.metrics().polls)
      << "polls must batch into fewer wire exchanges";
  // Honest servers serve true time; the fleet stays unshifted.
  EXPECT_EQ(pop.fraction_shifted(-1.0), 0.0);
  EXPECT_NEAR(pop.mean_shift_s(), 0.0, 0.05);
  EXPECT_EQ(pop.fraction_on_attacker(), 0.0);
}

TEST(ClientPopulation, EqualSeedsGiveEqualFleets) {
  auto run = [](u64 seed) {
    WorldConfig wc;
    wc.seed = seed;
    World world(wc);
    ClientPopulation pop(world, small_config(1'500, seed));
    world.run_for(Duration::seconds(200));
    ClientPopulation::Metrics m = pop.metrics();
    return std::tuple<u64, u64, u64, double>(m.polls, m.exchanges,
                                             m.dns_queries,
                                             pop.mean_shift_s());
  };
  EXPECT_EQ(run(42), run(42));
  EXPECT_NE(std::get<0>(run(42)), 0u);
}

TEST(ClientPopulation, SharedResolverPoisoningMigratesAcrossFleet) {
  WorldConfig wc;
  wc.seed = 9;
  World world(wc);
  ClientPopulation pop(world, small_config(2'000, 9));
  world.run_for(Duration::seconds(90));  // fleet synced, honest

  attack::CachePoisoner poisoner(world.attacker(),
                                 world.default_poisoner_config());
  poisoner.start();
  world.run_for(Duration::seconds(30));  // armed: fragments planted

  // The fleet warmed the resolver's cache, so nothing upstream moves (and
  // nothing can be poisoned) until the cached pool A expires. The fleet
  // still polls honest servers meanwhile.
  const double shifted_before = pop.fraction_shifted(-400.0);
  EXPECT_EQ(shifted_before, 0.0);

  // Two TTL rollovers do the whole job, with no attacker-side trigger at
  // all: the fleet's own re-resolution at the first rollover is the query
  // that reassembles with the planted fragment (delegation hijack); the
  // second rollover's re-resolution follows the hijacked delegation to
  // the attacker's nameserver and hands attacker NTP addresses to the
  // fleet. One more poll interval applies the -500 s time.
  world.run_for(Duration::seconds(
      2 * static_cast<i64>(world.config().pool_a_ttl) + 3 * 64 + 30));
  EXPECT_TRUE(world.delegation_hijacked())
      << "the fleet's own TTL-rollover query must trigger the hijack";
  const double shifted_after = pop.fraction_shifted(-400.0);
  EXPECT_GT(shifted_after, 0.9)
      << "before=" << shifted_before << " after=" << shifted_after;
  EXPECT_GT(shifted_after, shifted_before);
  EXPECT_GT(pop.fraction_on_attacker(), 0.9);
  EXPECT_LT(pop.mean_shift_s(), -400.0);
}

TEST(ClientPopulation, HerdTripsRateLimitersOnASmallPool) {
  WorldConfig wc;
  wc.seed = 13;
  wc.pool_size = 2;
  wc.rate_limit_fraction = 1.0;
  wc.kod_fraction = 1.0;
  World world(wc);
  PopulationConfig pc = small_config(4'000, 13);
  pc.gateways = 2;   // concentrate sources so per-source buckets fill
  pc.batch_cap = 32;
  ClientPopulation pop(world, pc);
  world.run_for(Duration::seconds(64 * 5));
  const ClientPopulation::Metrics& m = pop.metrics();
  EXPECT_GT(m.kod_polls + m.timeout_polls, 0u)
      << "a herd on a tiny fully-rate-limiting pool must hit the limiters";
  EXPECT_GT(m.polls, 0u);
}

TEST(ClientPopulation, ResidentMemoryStaysUnderBudget) {
  WorldConfig wc;
  wc.seed = 21;
  World world(wc);
  ClientPopulation pop(world, small_config(50'000, 21));
  world.run_for(Duration::seconds(150));
  EXPECT_LE(pop.resident_bytes_per_client(), 64.0)
      << "flat SoA state plus wheel entries must stay within the "
         "64 B/client population budget";
  EXPECT_GT(pop.metrics().polls, 0u);
}

}  // namespace
}  // namespace dnstime::scenario
