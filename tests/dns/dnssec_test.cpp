// Structural DNSSEC behaviour: signed zones protect against record
// tampering for validating resolvers, and only for them (§IX: <29% of
// clients validate; only time.cloudflare.com among NTP domains is signed).
#include <gtest/gtest.h>

#include "dns/nameserver.h"
#include "dns/resolver.h"

namespace dnstime::dns {
namespace {

using sim::Duration;

constexpr u64 kZoneSecret = 0x746C735F6B657921ull;

struct SignedWorld {
  sim::EventLoop loop;
  sim::Network net{loop, Rng{21}};
  net::NetStack ns_stack{net, Ipv4Addr{198, 51, 100, 1}, net::StackConfig{},
                         Rng{22}};
  net::NetStack res_stack{net, Ipv4Addr{10, 0, 0, 53}, net::StackConfig{},
                          Rng{23}};
  net::NetStack client_stack{net, Ipv4Addr{10, 0, 0, 7}, net::StackConfig{},
                             Rng{24}};
  Nameserver ns{ns_stack};
  std::unique_ptr<Resolver> resolver;
  std::unique_ptr<StubResolver> stub;

  explicit SignedWorld(bool validating) {
    Resolver::Config cfg;
    cfg.validate_dnssec = validating;
    cfg.trust_anchors["time.cloudflare.com"] = kZoneSecret;
    resolver = std::make_unique<Resolver>(res_stack, cfg);
    resolver->add_zone_hint(DnsName::from_string("time.cloudflare.com"),
                            {ns_stack.addr()});
    stub = std::make_unique<StubResolver>(client_stack, res_stack.addr());
  }
};

std::shared_ptr<StaticZone> cloudflare_zone() {
  auto zone = std::make_shared<StaticZone>(
      DnsName::from_string("time.cloudflare.com"), /*dnssec_signed=*/true,
      kZoneSecret);
  zone->add(make_a(DnsName::from_string("time.cloudflare.com"),
                   Ipv4Addr{162, 159, 200, 1}, 300));
  return zone;
}

TEST(Dnssec, ValidatingResolverAcceptsGenuineSignedAnswer) {
  SignedWorld w(/*validating=*/true);
  w.ns.add_zone(cloudflare_zone());
  std::vector<ResourceRecord> got;
  w.stub->resolve(DnsName::from_string("time.cloudflare.com"), RrType::kA,
                  [&](const std::vector<ResourceRecord>& a) { got = a; });
  w.loop.run_for(Duration::seconds(5));
  ASSERT_EQ(got.size(), 1u);
  EXPECT_EQ(got[0].a, (Ipv4Addr{162, 159, 200, 1}));
  EXPECT_EQ(w.resolver->validation_failures(), 0u);
}

TEST(Dnssec, ValidatingResolverRejectsTamperedRrset) {
  SignedWorld w(/*validating=*/true);
  // Zone claims to be time.cloudflare.com but signs with the wrong key
  // (models an off-path forgery: attacker cannot produce a valid RRSIG).
  auto zone = std::make_shared<StaticZone>(
      DnsName::from_string("time.cloudflare.com"), true, /*secret=*/999);
  zone->add(make_a(DnsName::from_string("time.cloudflare.com"),
                   Ipv4Addr{6, 6, 6, 6}, 300));
  w.ns.add_zone(zone);
  std::vector<ResourceRecord> got{make_a(DnsName{}, Ipv4Addr{}, 0)};
  w.stub->resolve(DnsName::from_string("time.cloudflare.com"), RrType::kA,
                  [&](const std::vector<ResourceRecord>& a) { got = a; });
  w.loop.run_for(Duration::seconds(10));
  EXPECT_TRUE(got.empty());  // SERVFAIL -> no answers
  EXPECT_GT(w.resolver->validation_failures(), 0u);
}

TEST(Dnssec, ValidatingResolverRejectsMissingSignature) {
  SignedWorld w(/*validating=*/true);
  // Unsigned answer for a zone the resolver has a trust anchor for.
  auto zone = std::make_shared<StaticZone>(
      DnsName::from_string("time.cloudflare.com"), /*signed=*/false);
  zone->add(make_a(DnsName::from_string("time.cloudflare.com"),
                   Ipv4Addr{6, 6, 6, 6}, 300));
  w.ns.add_zone(zone);
  std::vector<ResourceRecord> got{make_a(DnsName{}, Ipv4Addr{}, 0)};
  w.stub->resolve(DnsName::from_string("time.cloudflare.com"), RrType::kA,
                  [&](const std::vector<ResourceRecord>& a) { got = a; });
  w.loop.run_for(Duration::seconds(10));
  EXPECT_TRUE(got.empty());
}

TEST(Dnssec, NonValidatingResolverAcceptsForgery) {
  SignedWorld w(/*validating=*/false);
  auto zone = std::make_shared<StaticZone>(
      DnsName::from_string("time.cloudflare.com"), true, /*secret=*/999);
  zone->add(make_a(DnsName::from_string("time.cloudflare.com"),
                   Ipv4Addr{6, 6, 6, 6}, 300));
  w.ns.add_zone(zone);
  std::vector<ResourceRecord> got;
  w.stub->resolve(DnsName::from_string("time.cloudflare.com"), RrType::kA,
                  [&](const std::vector<ResourceRecord>& a) { got = a; });
  w.loop.run_for(Duration::seconds(5));
  ASSERT_EQ(got.size(), 1u);
  EXPECT_EQ(got[0].a, (Ipv4Addr{6, 6, 6, 6}));  // forgery accepted
}

TEST(Dnssec, UnsignedZoneUnaffectedByValidation) {
  // pool.ntp.org-style zone: no trust anchor, no signatures — a validating
  // resolver must still accept it (this is why DNSSEC does not currently
  // protect NTP: the domains are unsigned).
  SignedWorld w(/*validating=*/true);
  auto zone = std::make_shared<StaticZone>(DnsName::from_string("pool.ntp.org"));
  zone->add(make_a(DnsName::from_string("pool.ntp.org"),
                   Ipv4Addr{10, 1, 1, 1}, 150));
  w.ns.add_zone(zone);
  w.resolver->add_zone_hint(DnsName::from_string("pool.ntp.org"),
                            {w.ns_stack.addr()});
  std::vector<ResourceRecord> got;
  w.stub->resolve(DnsName::from_string("pool.ntp.org"), RrType::kA,
                  [&](const std::vector<ResourceRecord>& a) { got = a; });
  w.loop.run_for(Duration::seconds(5));
  EXPECT_EQ(got.size(), 1u);
}

}  // namespace
}  // namespace dnstime::dns
