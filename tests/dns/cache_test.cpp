#include "dns/cache.h"

#include <gtest/gtest.h>

namespace dnstime::dns {
namespace {

using sim::Duration;
using sim::Time;

const DnsName kPool = DnsName::from_string("pool.ntp.org");

TEST(DnsCache, InsertAndLookup) {
  DnsCache cache;
  cache.insert(kPool, RrType::kA, {make_a(kPool, Ipv4Addr{1, 1, 1, 1}, 150)},
               Time{});
  auto hit = cache.lookup(kPool, RrType::kA, Time{});
  ASSERT_TRUE(hit);
  EXPECT_EQ((*hit)[0].a, (Ipv4Addr{1, 1, 1, 1}));
}

TEST(DnsCache, TtlCountsDown) {
  DnsCache cache;
  cache.insert(kPool, RrType::kA, {make_a(kPool, Ipv4Addr{1, 1, 1, 1}, 150)},
               Time{});
  auto hit = cache.lookup(kPool, RrType::kA, Time{} + Duration::seconds(40));
  ASSERT_TRUE(hit);
  EXPECT_EQ((*hit)[0].ttl, 110u);
  EXPECT_EQ(cache.remaining_ttl(kPool, RrType::kA,
                                Time{} + Duration::seconds(40)),
            110u);
}

TEST(DnsCache, ExpiresAtTtl) {
  DnsCache cache;
  cache.insert(kPool, RrType::kA, {make_a(kPool, Ipv4Addr{1, 1, 1, 1}, 150)},
               Time{});
  EXPECT_TRUE(cache.contains(kPool, RrType::kA,
                             Time{} + Duration::seconds(149)));
  EXPECT_FALSE(cache.contains(kPool, RrType::kA,
                              Time{} + Duration::seconds(150)));
}

TEST(DnsCache, RrsetTtlIsMinimum) {
  DnsCache cache;
  cache.insert(kPool, RrType::kA,
               {make_a(kPool, Ipv4Addr{1, 1, 1, 1}, 150),
                make_a(kPool, Ipv4Addr{2, 2, 2, 2}, 60)},
               Time{});
  EXPECT_FALSE(cache.contains(kPool, RrType::kA,
                              Time{} + Duration::seconds(61)));
}

TEST(DnsCache, MaxTtlCapApplies) {
  DnsCache cache;
  // Attacker-style record with TTL > 24h, capped by resolver policy.
  cache.insert(kPool, RrType::kA,
               {make_a(kPool, Ipv4Addr{6, 6, 6, 6}, 90000)}, Time{},
               /*max_ttl=*/3600);
  EXPECT_TRUE(cache.contains(kPool, RrType::kA,
                             Time{} + Duration::seconds(3599)));
  EXPECT_FALSE(cache.contains(kPool, RrType::kA,
                              Time{} + Duration::seconds(3600)));
}

TEST(DnsCache, TypesAreIndependent) {
  DnsCache cache;
  cache.insert(kPool, RrType::kA, {make_a(kPool, Ipv4Addr{1, 1, 1, 1}, 150)},
               Time{});
  EXPECT_FALSE(cache.contains(kPool, RrType::kNs, Time{}));
}

TEST(DnsCache, ReplaceUpdatesExpiry) {
  DnsCache cache;
  cache.insert(kPool, RrType::kA, {make_a(kPool, Ipv4Addr{1, 1, 1, 1}, 10)},
               Time{});
  cache.insert(kPool, RrType::kA,
               {make_a(kPool, Ipv4Addr{6, 6, 6, 6}, 90000)}, Time{});
  auto hit = cache.lookup(kPool, RrType::kA, Time{} + Duration::seconds(100));
  ASSERT_TRUE(hit);
  EXPECT_EQ((*hit)[0].a, (Ipv4Addr{6, 6, 6, 6}));
}

TEST(DnsCache, EvictRemoves) {
  DnsCache cache;
  cache.insert(kPool, RrType::kA, {make_a(kPool, Ipv4Addr{1, 1, 1, 1}, 150)},
               Time{});
  cache.evict(kPool, RrType::kA);
  EXPECT_FALSE(cache.contains(kPool, RrType::kA, Time{}));
  EXPECT_EQ(cache.size(), 0u);
}

}  // namespace
}  // namespace dnstime::dns
