#include "dns/resolver.h"

#include <gtest/gtest.h>

#include "dns/nameserver.h"
#include "dns/pool_zone.h"

namespace dnstime::dns {
namespace {

using sim::Duration;

/// A small "internet": one authoritative NS, one recursive resolver, one
/// client host with a stub resolver.
struct World {
  sim::EventLoop loop;
  sim::Network net{loop, Rng{11}};
  net::NetStack ns_stack{net, Ipv4Addr{198, 51, 100, 1}, net::StackConfig{},
                         Rng{12}};
  net::NetStack res_stack{net, Ipv4Addr{10, 0, 0, 53}, net::StackConfig{},
                          Rng{13}};
  net::NetStack client_stack{net, Ipv4Addr{10, 0, 0, 7}, net::StackConfig{},
                             Rng{14}};
  Nameserver ns{ns_stack};
  Resolver resolver;
  StubResolver stub{client_stack, res_stack.addr()};

  explicit World(Resolver::Config cfg = {}) : resolver(res_stack, cfg) {
    resolver.add_zone_hint(DnsName::from_string("example"),
                           {ns_stack.addr()});
  }
};

std::shared_ptr<StaticZone> example_zone() {
  auto zone = std::make_shared<StaticZone>(DnsName::from_string("example"));
  zone->add(make_a(DnsName::from_string("www.example"),
                   Ipv4Addr{203, 0, 113, 80}, 300));
  return zone;
}

TEST(Resolver, RecursiveLookupThroughUpstream) {
  World w;
  w.ns.add_zone(example_zone());
  std::vector<ResourceRecord> got;
  w.stub.resolve(DnsName::from_string("www.example"), RrType::kA,
                 [&](const std::vector<ResourceRecord>& a) { got = a; });
  w.loop.run_for(Duration::seconds(5));
  ASSERT_EQ(got.size(), 1u);
  EXPECT_EQ(got[0].a, (Ipv4Addr{203, 0, 113, 80}));
  EXPECT_EQ(w.resolver.upstream_queries(), 1u);
}

TEST(Resolver, SecondLookupServedFromCache) {
  World w;
  w.ns.add_zone(example_zone());
  int done = 0;
  auto cb = [&](const std::vector<ResourceRecord>&) { done++; };
  w.stub.resolve(DnsName::from_string("www.example"), RrType::kA, cb);
  w.loop.run_for(Duration::seconds(5));
  w.stub.resolve(DnsName::from_string("www.example"), RrType::kA, cb);
  w.loop.run_for(Duration::seconds(5));
  EXPECT_EQ(done, 2);
  EXPECT_EQ(w.resolver.upstream_queries(), 1u);
  EXPECT_EQ(w.resolver.cache_hits(), 1u);
}

TEST(Resolver, RdZeroAnswersOnlyFromCache) {
  World w;
  w.ns.add_zone(example_zone());

  // RD=0 while not cached: no answer records, and no upstream query.
  DnsMessage probe;
  probe.id = 99;
  probe.rd = false;
  probe.questions = {
      DnsQuestion{DnsName::from_string("www.example"), RrType::kA}};
  std::vector<std::size_t> answer_counts;
  u16 port = w.client_stack.ephemeral_port();
  w.client_stack.bind_udp(port, [&](const net::UdpEndpoint&, u16,
                                    BufView payload) {
    answer_counts.push_back(decode_dns(payload).answers.size());
  });
  w.client_stack.send_udp(w.res_stack.addr(), port, kDnsPort,
                          encode_dns(probe));
  w.loop.run_for(Duration::seconds(2));
  ASSERT_EQ(answer_counts.size(), 1u);
  EXPECT_EQ(answer_counts[0], 0u);
  EXPECT_EQ(w.resolver.upstream_queries(), 0u);

  // Fill the cache with an RD=1 lookup, then probe again.
  w.stub.resolve(DnsName::from_string("www.example"), RrType::kA,
                 [](const std::vector<ResourceRecord>&) {});
  w.loop.run_for(Duration::seconds(5));
  w.client_stack.send_udp(w.res_stack.addr(), port, kDnsPort,
                          encode_dns(probe));
  w.loop.run_for(Duration::seconds(2));
  ASSERT_EQ(answer_counts.size(), 2u);
  EXPECT_EQ(answer_counts[1], 1u);  // now cached -> answered with RD=0
}

TEST(Resolver, TimeoutYieldsEmptyAnswer) {
  World w;  // note: no zone added -> upstream never answers... but the NS
            // would answer REFUSED. Use an unreachable upstream instead.
  Resolver::Config cfg;
  net::NetStack res2{w.net, Ipv4Addr{10, 0, 0, 54}, net::StackConfig{},
                     Rng{15}};
  Resolver dead(res2, cfg);
  dead.add_zone_hint(DnsName::from_string("example"),
                     {Ipv4Addr{192, 0, 2, 254}});  // black hole
  StubResolver stub{w.client_stack, res2.addr()};
  std::optional<std::size_t> got;
  stub.resolve(DnsName::from_string("www.example"), RrType::kA,
               [&](const std::vector<ResourceRecord>& a) { got = a.size(); },
               Duration::seconds(10));
  w.loop.run_for(Duration::seconds(20));
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(*got, 0u);
}

TEST(Resolver, SpoofedResponseWithWrongTxidRejected) {
  World w;
  w.ns.add_zone(example_zone());
  // Off-path attacker floods responses with guessed TXIDs from the real
  // NS address — but to the wrong (unknown) port, so they never land.
  net::NetStack attacker{w.net, Ipv4Addr{6, 6, 6, 6}, net::StackConfig{},
                         Rng{66}};
  for (u16 guess = 0; guess < 200; ++guess) {
    DnsMessage forged;
    forged.id = guess;
    forged.qr = true;
    forged.questions = {
        DnsQuestion{DnsName::from_string("www.example"), RrType::kA}};
    forged.answers.push_back(
        make_a(DnsName::from_string("www.example"), Ipv4Addr{6, 6, 6, 6}, 300));
    net::Ipv4Packet pkt;
    pkt.src = w.ns_stack.addr();  // spoofed source
    pkt.dst = w.res_stack.addr();
    pkt.protocol = net::kProtoUdp;
    pkt.payload = net::encode_udp(
        net::UdpDatagram{.src_port = kDnsPort,
                         .dst_port = static_cast<u16>(1024 + guess),
                         .payload = encode_dns(forged)},
        w.ns_stack.addr(), w.res_stack.addr());
    attacker.send_raw(pkt);
  }
  std::vector<ResourceRecord> got;
  w.stub.resolve(DnsName::from_string("www.example"), RrType::kA,
                 [&](const std::vector<ResourceRecord>& a) { got = a; });
  w.loop.run_for(Duration::seconds(5));
  ASSERT_EQ(got.size(), 1u);
  EXPECT_EQ(got[0].a, (Ipv4Addr{203, 0, 113, 80}));  // genuine answer won
}

TEST(Resolver, CachedDelegationOverridesHints) {
  World w;
  // Seed the cache with a delegation for example -> evil NS.
  net::NetStack evil_stack{w.net, Ipv4Addr{6, 6, 6, 1}, net::StackConfig{},
                           Rng{17}};
  Nameserver evil{evil_stack};
  auto zone = std::make_shared<StaticZone>(DnsName::from_string("example"));
  zone->add(make_a(DnsName::from_string("www.example"), Ipv4Addr{6, 6, 6, 6},
                   300));
  evil.add_zone(zone);

  w.ns.add_zone(example_zone());
  auto ns_name = DnsName::from_string("ns.example");
  w.resolver.cache().insert(
      DnsName::from_string("example"), RrType::kNs,
      {make_ns(DnsName::from_string("example"), ns_name, 86400)},
      w.loop.now());
  w.resolver.cache().insert(ns_name, RrType::kA,
                            {make_a(ns_name, evil_stack.addr(), 86400)},
                            w.loop.now());

  std::vector<ResourceRecord> got;
  w.stub.resolve(DnsName::from_string("www.example"), RrType::kA,
                 [&](const std::vector<ResourceRecord>& a) { got = a; });
  w.loop.run_for(Duration::seconds(5));
  ASSERT_EQ(got.size(), 1u);
  EXPECT_EQ(got[0].a, (Ipv4Addr{6, 6, 6, 6}));  // went to the evil NS
}

TEST(Resolver, OutOfBailiwickRecordsNotCached) {
  World w;
  auto zone = std::make_shared<StaticZone>(DnsName::from_string("example"));
  zone->add(make_a(DnsName::from_string("www.example"),
                   Ipv4Addr{203, 0, 113, 80}, 300));
  // Malicious extra record for an unrelated domain.
  zone->add(make_a(DnsName::from_string("www.example"),
                   Ipv4Addr{203, 0, 113, 81}, 300));
  w.ns.add_zone(zone);
  // Tamper: nameserver also returns a record for pool.ntp.org.
  auto evil_zone = std::make_shared<StaticZone>(DnsName::from_string("example"));
  (void)evil_zone;

  w.stub.resolve(DnsName::from_string("www.example"), RrType::kA,
                 [](const std::vector<ResourceRecord>&) {});
  w.loop.run_for(Duration::seconds(5));
  EXPECT_FALSE(w.resolver.cache().contains(
      DnsName::from_string("pool.ntp.org"), RrType::kA, w.loop.now()));
}

}  // namespace
}  // namespace dnstime::dns
