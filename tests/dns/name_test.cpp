#include "dns/name.h"

#include <gtest/gtest.h>

namespace dnstime::dns {
namespace {

TEST(DnsName, ParseAndPrint) {
  auto n = DnsName::from_string("pool.NTP.org");
  EXPECT_EQ(n.to_string(), "pool.ntp.org");
  EXPECT_EQ(n.label_count(), 3u);
}

TEST(DnsName, RootName) {
  auto n = DnsName::from_string(".");
  EXPECT_TRUE(n.empty());
  EXPECT_EQ(n.to_string(), ".");
}

TEST(DnsName, SubdomainMatching) {
  auto pool = DnsName::from_string("pool.ntp.org");
  auto zero = DnsName::from_string("0.pool.ntp.org");
  auto org = DnsName::from_string("org");
  auto other = DnsName::from_string("pool.ntp.com");
  EXPECT_TRUE(zero.is_subdomain_of(pool));
  EXPECT_TRUE(pool.is_subdomain_of(pool));
  EXPECT_TRUE(pool.is_subdomain_of(org));
  EXPECT_FALSE(pool.is_subdomain_of(zero));
  EXPECT_FALSE(other.is_subdomain_of(pool));
}

TEST(DnsName, Prepend) {
  auto pool = DnsName::from_string("pool.ntp.org");
  EXPECT_EQ(pool.prepend("de").to_string(), "de.pool.ntp.org");
}

TEST(DnsName, WireRoundTripUncompressed) {
  ByteWriter w;
  NameCompressor comp;
  comp.write_name(w, DnsName::from_string("a.bc.def"));
  Bytes wire = std::move(w).take();
  // 1 'a' 2 'b' 'c' 3 'd' 'e' 'f' 0
  ASSERT_EQ(wire.size(), 10u);
  ByteReader r(wire);
  EXPECT_EQ(read_name(r).to_string(), "a.bc.def");
  EXPECT_TRUE(r.empty());
}

TEST(DnsName, CompressionPointsToEarlierName) {
  ByteWriter w;
  NameCompressor comp;
  comp.write_name(w, DnsName::from_string("pool.ntp.org"));
  std::size_t first_len = w.size();
  comp.write_name(w, DnsName::from_string("0.pool.ntp.org"));
  Bytes wire = std::move(w).take();
  // Second name should be 1 label (2 bytes) + 2-byte pointer.
  EXPECT_EQ(wire.size(), first_len + 4);

  ByteReader r(wire);
  EXPECT_EQ(read_name(r).to_string(), "pool.ntp.org");
  EXPECT_EQ(read_name(r).to_string(), "0.pool.ntp.org");
}

TEST(DnsName, PointerLoopRejected) {
  // A name that points at itself.
  Bytes wire = {0xC0, 0x00};
  ByteReader r(wire);
  EXPECT_THROW((void)read_name(r), DecodeError);
}

TEST(DnsName, OverlongLabelRejected) {
  Bytes wire;
  wire.push_back(70);  // label length > 63 (and not a pointer tag)
  for (int i = 0; i < 70; ++i) wire.push_back('a');
  wire.push_back(0);
  ByteReader r(wire);
  EXPECT_THROW((void)read_name(r), DecodeError);
}

}  // namespace
}  // namespace dnstime::dns
