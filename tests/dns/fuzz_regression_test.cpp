// Deterministic replays of fuzz-found dns::message crashers
// (fuzz/fuzz_dns_message.cpp found them; the corpus keeps the raw inputs
// as fuzz/corpus/dns_message/crash-*). Each case carries the bytes inline
// so the regression runs in every tier-1 ctest invocation with no
// filesystem dependency.
#include <gtest/gtest.h>

#include "dns/message.h"

namespace dnstime::dns {
namespace {

// crash-compression-dotted-label: a response whose second record's owner is
// the single label "a.b" (a literal dot inside a label — legal on the
// wire), preceded by a record owned by ["a","b"]. The NameCompressor used
// to key compression targets by the *dotted* suffix string, under which
// both names collide; the encoder then emitted a pointer to ["a","b"] for
// the ["a.b"] owner, so decode(encode(m)) changed the message. The key is
// now the length-prefixed wire form.
TEST(DnsFuzzRegression, DottedLabelDoesNotAliasCompressionTarget) {
  const u8 wire[] = {
      0x00, 0x00, 0x00, 0x00,  // id, flags
      0x00, 0x00, 0x00, 0x02,  // qd=0, an=2
      0x00, 0x00, 0x00, 0x00,  // ns=0, ar=0
      // answer 1: owner ["a","b"], A 1.2.3.4
      0x01, 'a', 0x01, 'b', 0x00, 0x00, 0x01, 0x00, 0x01,
      0x00, 0x00, 0x00, 0x00, 0x00, 0x04, 0x01, 0x02, 0x03, 0x04,
      // answer 2: owner ["a.b"] (one label with an embedded dot)
      0x03, 'a', '.', 'b', 0x00, 0x00, 0x01, 0x00, 0x01,
      0x00, 0x00, 0x00, 0x00, 0x00, 0x04, 0x05, 0x06, 0x07, 0x08,
  };
  DnsMessage msg = decode_dns(wire);
  ASSERT_EQ(msg.answers.size(), 2u);
  ASSERT_EQ(msg.answers[0].name.labels().size(), 2u);
  ASSERT_EQ(msg.answers[1].name.labels().size(), 1u);
  EXPECT_EQ(msg.answers[1].name.labels()[0], "a.b");

  Bytes reencoded = encode_dns(msg);
  DnsMessage reparsed = decode_dns(reencoded);
  EXPECT_EQ(reparsed, msg);  // used to come back with answers[1] = ["a","b"]
  ASSERT_EQ(reparsed.answers[1].name.labels().size(), 1u);
  EXPECT_EQ(reparsed.answers[1].name.labels()[0], "a.b");
  // And idempotence on top of identity.
  EXPECT_EQ(encode_dns(reparsed), reencoded);
}

// The general property the fuzzer enforces, pinned on a nontrivial
// message: decode(encode(m)) == m and encode is idempotent.
TEST(DnsFuzzRegression, DecodeEncodeIdentityOnCompressedResponse) {
  DnsMessage msg;
  msg.id = 0x1234;
  msg.qr = msg.aa = true;
  msg.questions.push_back(
      {DnsName::from_string("0.pool.ntp.org"), RrType::kA});
  msg.answers.push_back(
      make_a(DnsName::from_string("0.pool.ntp.org"), Ipv4Addr{0x0A000001}, 150));
  msg.authority.push_back(make_ns(DnsName::from_string("pool.ntp.org"),
                                  DnsName::from_string("ns1.ntp.org"), 3600));
  Bytes wire = encode_dns(msg);
  DnsMessage reparsed = decode_dns(wire);
  EXPECT_EQ(reparsed, msg);
  EXPECT_EQ(encode_dns(reparsed), wire);
}

}  // namespace
}  // namespace dnstime::dns
