#include "dns/pool_zone.h"

#include <gtest/gtest.h>

namespace dnstime::dns {
namespace {

std::vector<Ipv4Addr> make_servers(std::size_t n) {
  std::vector<Ipv4Addr> out;
  for (std::size_t i = 0; i < n; ++i) {
    out.emplace_back(u32{0x0A000000} + static_cast<u32>(i) + 1);
  }
  return out;
}

PoolZone::Config pool_config() {
  PoolZone::Config cfg;
  cfg.nameservers = {
      {DnsName::from_string("ns1.ntp.org"), Ipv4Addr{198, 51, 100, 1}},
      {DnsName::from_string("ns2.ntp.org"), Ipv4Addr{198, 51, 100, 2}},
      {DnsName::from_string("ns3.ntp.org"), Ipv4Addr{198, 51, 100, 3}},
  };
  return cfg;
}

TEST(PoolZone, ReturnsFourAddressesPerQuery) {
  PoolZone zone(DnsName::from_string("pool.ntp.org"), make_servers(10),
                pool_config());
  DnsMessage resp;
  ASSERT_TRUE(zone.handle(
      DnsQuestion{DnsName::from_string("pool.ntp.org"), RrType::kA}, resp));
  EXPECT_EQ(resp.answers.size(), 4u);
  for (const auto& rr : resp.answers) {
    EXPECT_EQ(rr.type, RrType::kA);
    EXPECT_EQ(rr.ttl, 150u);  // the paper's pool TTL
  }
}

TEST(PoolZone, RotatesThroughPool) {
  PoolZone zone(DnsName::from_string("pool.ntp.org"), make_servers(8),
                pool_config());
  DnsQuestion q{DnsName::from_string("pool.ntp.org"), RrType::kA};
  DnsMessage r1, r2, r3;
  (void)zone.handle(q, r1);
  (void)zone.handle(q, r2);
  (void)zone.handle(q, r3);
  EXPECT_NE(r1.answers[0].a, r2.answers[0].a);
  // 8 servers, 4 per response: the third response wraps to the first set.
  EXPECT_EQ(r1.answers[0].a, r3.answers[0].a);
}

TEST(PoolZone, PeekDoesNotAdvanceRotation) {
  PoolZone zone(DnsName::from_string("pool.ntp.org"), make_servers(12),
                pool_config());
  DnsQuestion q{DnsName::from_string("pool.ntp.org"), RrType::kA};
  DnsMessage peeked = zone.peek_response(q);
  DnsMessage actual;
  (void)zone.handle(q, actual);
  ASSERT_EQ(peeked.answers.size(), actual.answers.size());
  for (std::size_t i = 0; i < peeked.answers.size(); ++i) {
    EXPECT_EQ(peeked.answers[i].a, actual.answers[i].a);
  }
}

TEST(PoolZone, SubzonesServeFromSamePool) {
  PoolZone zone(DnsName::from_string("pool.ntp.org"), make_servers(10),
                pool_config());
  DnsMessage resp;
  ASSERT_TRUE(zone.handle(
      DnsQuestion{DnsName::from_string("0.pool.ntp.org"), RrType::kA}, resp));
  EXPECT_EQ(resp.answers.size(), 4u);
  DnsMessage resp_cc;
  ASSERT_TRUE(zone.handle(
      DnsQuestion{DnsName::from_string("de.pool.ntp.org"), RrType::kA},
      resp_cc));
  EXPECT_EQ(resp_cc.answers.size(), 4u);
}

TEST(PoolZone, DelegationGlueFormsMessageTail) {
  PoolZone zone(DnsName::from_string("pool.ntp.org"), make_servers(10),
                pool_config());
  DnsMessage resp;
  resp.qr = true;
  resp.questions = {DnsQuestion{DnsName::from_string("pool.ntp.org"),
                                RrType::kA}};
  (void)zone.handle(resp.questions[0], resp);
  EXPECT_EQ(resp.authority.size(), 3u);
  EXPECT_EQ(resp.additional.size(), 3u);

  // On the wire, the glue A rdata must be the last record spans.
  Bytes wire = encode_dns(resp);
  std::vector<RecordSpan> spans;
  (void)decode_dns(wire, &spans);
  ASSERT_GE(spans.size(), 3u);
  for (std::size_t i = spans.size() - 3; i < spans.size(); ++i) {
    EXPECT_EQ(spans[i].section, Section::kAdditional);
    EXPECT_EQ(spans[i].type, RrType::kA);
  }
}

TEST(PoolZone, NsQueryReturnsNsRrset) {
  PoolZone zone(DnsName::from_string("pool.ntp.org"), make_servers(4),
                pool_config());
  DnsMessage resp;
  ASSERT_TRUE(zone.handle(
      DnsQuestion{DnsName::from_string("pool.ntp.org"), RrType::kNs}, resp));
  EXPECT_EQ(resp.answers.size(), 3u);
  EXPECT_EQ(resp.answers[0].type, RrType::kNs);
}

TEST(PoolZone, TxtPaddingInflatesResponse) {
  auto cfg = pool_config();
  DnsQuestion q{DnsName::from_string("pool.ntp.org"), RrType::kA};
  PoolZone plain(DnsName::from_string("pool.ntp.org"), make_servers(4), cfg);
  cfg.pad_txt_bytes = 200;
  PoolZone padded(DnsName::from_string("pool.ntp.org"), make_servers(4), cfg);
  std::size_t plain_size = encode_dns(plain.peek_response(q)).size();
  std::size_t padded_size = encode_dns(padded.peek_response(q)).size();
  EXPECT_GE(padded_size, plain_size + 200);
}

}  // namespace
}  // namespace dnstime::dns
