#include "dns/message.h"

#include <gtest/gtest.h>

namespace dnstime::dns {
namespace {

DnsMessage sample_response() {
  DnsMessage m;
  m.id = 0xBEEF;
  m.qr = true;
  m.aa = true;
  m.rd = true;
  m.ra = true;
  m.questions = {DnsQuestion{DnsName::from_string("pool.ntp.org"),
                             RrType::kA}};
  m.answers.push_back(
      make_a(DnsName::from_string("pool.ntp.org"), Ipv4Addr{1, 2, 3, 4}, 150));
  m.answers.push_back(
      make_a(DnsName::from_string("pool.ntp.org"), Ipv4Addr{5, 6, 7, 8}, 150));
  m.authority.push_back(make_ns(DnsName::from_string("pool.ntp.org"),
                                DnsName::from_string("ns1.ntp.org"), 86400));
  m.additional.push_back(
      make_a(DnsName::from_string("ns1.ntp.org"), Ipv4Addr{9, 9, 9, 9}, 86400));
  return m;
}

TEST(DnsMessage, RoundTrip) {
  DnsMessage m = sample_response();
  DnsMessage back = decode_dns(encode_dns(m));
  EXPECT_EQ(back.id, 0xBEEF);
  EXPECT_TRUE(back.qr);
  EXPECT_TRUE(back.aa);
  ASSERT_EQ(back.questions.size(), 1u);
  EXPECT_EQ(back.questions[0].name.to_string(), "pool.ntp.org");
  ASSERT_EQ(back.answers.size(), 2u);
  EXPECT_EQ(back.answers[0].a, (Ipv4Addr{1, 2, 3, 4}));
  EXPECT_EQ(back.answers[1].a, (Ipv4Addr{5, 6, 7, 8}));
  ASSERT_EQ(back.authority.size(), 1u);
  EXPECT_EQ(back.authority[0].target.to_string(), "ns1.ntp.org");
  ASSERT_EQ(back.additional.size(), 1u);
  EXPECT_EQ(back.additional[0].a, (Ipv4Addr{9, 9, 9, 9}));
}

TEST(DnsMessage, RcodeAndFlagsRoundTrip) {
  DnsMessage m;
  m.id = 7;
  m.qr = true;
  m.rcode = Rcode::kNxDomain;
  m.ad = true;
  m.tc = true;
  m.questions = {DnsQuestion{DnsName::from_string("x.example"), RrType::kA}};
  DnsMessage back = decode_dns(encode_dns(m));
  EXPECT_EQ(back.rcode, Rcode::kNxDomain);
  EXPECT_TRUE(back.ad);
  EXPECT_TRUE(back.tc);
}

TEST(DnsMessage, TxtRecordRoundTrip) {
  DnsMessage m;
  m.qr = true;
  m.questions = {DnsQuestion{DnsName::from_string("t.example"), RrType::kTxt}};
  std::string big(600, 'p');  // forces multiple character-strings
  m.answers.push_back(make_txt(DnsName::from_string("t.example"), big, 60));
  DnsMessage back = decode_dns(encode_dns(m));
  ASSERT_EQ(back.answers.size(), 1u);
  EXPECT_EQ(back.answers[0].txt, big);
}

TEST(DnsMessage, RrsigRoundTrip) {
  DnsMessage m;
  m.qr = true;
  m.questions = {DnsQuestion{DnsName::from_string("s.example"), RrType::kA}};
  ResourceRecord sig;
  sig.name = DnsName::from_string("s.example");
  sig.type = RrType::kRrsig;
  sig.ttl = 300;
  sig.covered = RrType::kA;
  sig.signature = 0x1122334455667788ull;
  m.answers.push_back(sig);
  DnsMessage back = decode_dns(encode_dns(m));
  ASSERT_EQ(back.answers.size(), 1u);
  EXPECT_EQ(back.answers[0].covered, RrType::kA);
  EXPECT_EQ(back.answers[0].signature, 0x1122334455667788ull);
}

TEST(DnsMessage, SpansLocateRdata) {
  DnsMessage m = sample_response();
  Bytes wire = encode_dns(m);
  std::vector<RecordSpan> spans;
  (void)decode_dns(wire, &spans);
  ASSERT_EQ(spans.size(), 4u);

  // The span of the first answer's rdata should contain 1.2.3.4.
  const RecordSpan& s0 = spans[0];
  EXPECT_EQ(s0.section, Section::kAnswer);
  EXPECT_EQ(s0.type, RrType::kA);
  ASSERT_EQ(s0.rdata_length, 4u);
  EXPECT_EQ(wire[s0.rdata_offset], 1);
  EXPECT_EQ(wire[s0.rdata_offset + 1], 2);
  EXPECT_EQ(wire[s0.rdata_offset + 2], 3);
  EXPECT_EQ(wire[s0.rdata_offset + 3], 4);

  // Rewriting the rdata in place changes the decoded address — the
  // operation the fragment crafter performs.
  wire[s0.rdata_offset] = 66;
  DnsMessage poisoned = decode_dns(wire);
  EXPECT_EQ(poisoned.answers[0].a, (Ipv4Addr{66, 2, 3, 4}));

  // TTL span: 4 bytes big-endian == 150 for pool answers.
  u32 ttl = (u32{wire[s0.ttl_offset]} << 24) |
            (u32{wire[s0.ttl_offset + 1]} << 16) |
            (u32{wire[s0.ttl_offset + 2]} << 8) | u32{wire[s0.ttl_offset + 3]};
  EXPECT_EQ(ttl, 150u);

  // Last span is the additional-section glue (the poisoning target).
  EXPECT_EQ(spans.back().section, Section::kAdditional);
}

TEST(DnsMessage, MalformedInputThrows) {
  Bytes junk = {0x12, 0x34, 0x00};
  EXPECT_THROW((void)decode_dns(junk), DecodeError);
}

TEST(DnsMessage, SignatureChangesWithRrsetContent) {
  auto owner = DnsName::from_string("pool.ntp.org");
  std::vector<ResourceRecord> set1 = {make_a(owner, Ipv4Addr{1, 1, 1, 1}, 60)};
  std::vector<ResourceRecord> set2 = {make_a(owner, Ipv4Addr{6, 6, 6, 6}, 60)};
  u64 s1 = sign_rrset(42, owner, RrType::kA, set1);
  u64 s2 = sign_rrset(42, owner, RrType::kA, set2);
  u64 s3 = sign_rrset(43, owner, RrType::kA, set1);
  EXPECT_NE(s1, s2);  // rdata covered
  EXPECT_NE(s1, s3);  // key covered
  // TTL is not covered (mirrors DNSSEC semantics).
  std::vector<ResourceRecord> set1_ttl = {
      make_a(owner, Ipv4Addr{1, 1, 1, 1}, 9999)};
  EXPECT_EQ(s1, sign_rrset(42, owner, RrType::kA, set1_ttl));
}

}  // namespace
}  // namespace dnstime::dns
