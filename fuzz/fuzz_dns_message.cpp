// libFuzzer harness: dns::message decode on arbitrary bytes.
//
// The decoder is the attack surface the paper's crafted responses hit, so
// the contract under fuzzing is strict:
//   * decode_dns on any input either returns or throws DecodeError — any
//     other escape (sanitizer report, std::bad_alloc from an amplification
//     bug, another exception type) is a finding;
//   * every RecordSpan the decoder reports must lie inside the input (the
//     fragment crafter rewrites bytes at those offsets);
//   * encode preserves meaning on decoded messages — decode(encode(m)) == m
//     — and is idempotent: encode(decode(encode(m))) == encode(m).
//     Exceptions from encode or the second decode propagate and crash the
//     harness on purpose.
#include <cstdint>
#include <cstdlib>

#include "dns/message.h"

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size) {
  using namespace dnstime;
  std::vector<dns::RecordSpan> spans;
  dns::DnsMessage msg;
  try {
    msg = dns::decode_dns({data, size}, &spans);
  } catch (const DecodeError&) {
    return 0;
  }
  for (const auto& s : spans) {
    if (s.ttl_offset + 4 > size || s.rdata_offset + s.rdata_length > size ||
        s.rdata_offset + s.rdata_length < s.rdata_offset) {
      std::abort();  // span escapes the input buffer
    }
  }
  Bytes first = dns::encode_dns(msg);
  dns::DnsMessage reparsed = dns::decode_dns(first);
  if (!(reparsed == msg)) std::abort();  // encode corrupted the message
  Bytes second = dns::encode_dns(reparsed);
  if (first != second) std::abort();  // encoder not idempotent
  return 0;
}
