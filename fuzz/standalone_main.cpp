// Replay / smoke-mutate driver for fuzz harnesses built without libFuzzer.
//
// Clang builds link the real libFuzzer engine instead of this file; GCC
// builds (the default container toolchain) get this driver so the same
// harness binaries exist everywhere and the committed corpus replays in
// plain ctest runs. The CLI is shaped like libFuzzer's so CMake can invoke
// either engine identically:
//
//   fuzz_xxx [-runs=0] FILE|DIR...     replay inputs, exit 0 if none crash
//   fuzz_xxx -mutate=N [-seed=S] DIR   N deterministic mutations seeded
//                                      from the corpus (smoke fuzzing; the
//                                      candidate input is written to
//                                      crash-candidate.bin before each run
//                                      so a crash leaves its reproducer)
//
// Unknown -flags are ignored (libFuzzer compatibility). Inputs are visited
// in sorted path order, so replay is deterministic.
#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size);

namespace {

namespace fs = std::filesystem;

std::vector<uint8_t> read_file(const fs::path& p) {
  std::ifstream in(p, std::ios::binary);
  return {std::istreambuf_iterator<char>(in), std::istreambuf_iterator<char>()};
}

// xorshift64* — deterministic, self-contained (no std::random_device: the
// driver itself must obey the repo's determinism rules).
uint64_t rng_state = 0x9E3779B97F4A7C15ull;
uint64_t next_rand() {
  uint64_t x = rng_state;
  x ^= x >> 12;
  x ^= x << 25;
  x ^= x >> 27;
  rng_state = x;
  return x * 0x2545F4914F6CDD1Dull;
}

void mutate(std::vector<uint8_t>& buf) {
  switch (next_rand() % 6) {
    case 0:  // flip a byte
      if (!buf.empty()) buf[next_rand() % buf.size()] ^= 1u << (next_rand() % 8);
      break;
    case 1:  // overwrite a byte
      if (!buf.empty()) buf[next_rand() % buf.size()] = static_cast<uint8_t>(next_rand());
      break;
    case 2:  // insert a byte
      buf.insert(buf.begin() + static_cast<std::ptrdiff_t>(
                     buf.empty() ? 0 : next_rand() % (buf.size() + 1)),
                 static_cast<uint8_t>(next_rand()));
      break;
    case 3:  // erase a byte
      if (!buf.empty())
        buf.erase(buf.begin() + static_cast<std::ptrdiff_t>(next_rand() % buf.size()));
      break;
    case 4:  // truncate
      if (!buf.empty()) buf.resize(next_rand() % buf.size());
      break;
    case 5: {  // duplicate a block
      if (buf.empty() || buf.size() > (1u << 16)) break;
      size_t at = next_rand() % buf.size();
      size_t n = std::min<size_t>(next_rand() % 64 + 1, buf.size() - at);
      std::vector<uint8_t> block(buf.begin() + static_cast<std::ptrdiff_t>(at),
                                 buf.begin() + static_cast<std::ptrdiff_t>(at + n));
      buf.insert(buf.begin() + static_cast<std::ptrdiff_t>(at), block.begin(),
                 block.end());
      break;
    }
  }
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<fs::path> inputs;
  uint64_t mutate_iters = 0;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("-mutate=", 0) == 0) {
      mutate_iters = std::strtoull(arg.c_str() + 8, nullptr, 10);
    } else if (arg.rfind("-seed=", 0) == 0) {
      rng_state = std::strtoull(arg.c_str() + 6, nullptr, 10) | 1;
    } else if (!arg.empty() && arg[0] == '-') {
      continue;  // libFuzzer-style flag; replay semantics are the default
    } else if (fs::is_directory(arg)) {
      for (const auto& e : fs::recursive_directory_iterator(arg)) {
        if (e.is_regular_file()) inputs.push_back(e.path());
      }
    } else if (fs::exists(arg)) {
      inputs.emplace_back(arg);
    } else {
      std::fprintf(stderr, "fuzz driver: no such input: %s\n", arg.c_str());
      return 2;
    }
  }
  std::sort(inputs.begin(), inputs.end());

  std::vector<std::vector<uint8_t>> pool;
  for (const auto& p : inputs) {
    std::vector<uint8_t> bytes = read_file(p);
    std::fprintf(stderr, "Running: %s (%zu bytes)\n", p.string().c_str(),
                 bytes.size());
    LLVMFuzzerTestOneInput(bytes.data(), bytes.size());
    pool.push_back(std::move(bytes));
  }
  std::fprintf(stderr, "Replayed %zu inputs.\n", pool.size());

  if (mutate_iters != 0) {
    if (pool.empty()) pool.emplace_back();  // fuzz from the empty input
    for (uint64_t i = 0; i < mutate_iters; ++i) {
      std::vector<uint8_t> buf = pool[next_rand() % pool.size()];
      uint64_t rounds = next_rand() % 8 + 1;
      for (uint64_t r = 0; r < rounds; ++r) mutate(buf);
      {
        // Persist before running: a crash below leaves its reproducer.
        std::ofstream out("crash-candidate.bin", std::ios::binary);
        out.write(reinterpret_cast<const char*>(buf.data()),
                  static_cast<std::streamsize>(buf.size()));
      }
      LLVMFuzzerTestOneInput(buf.data(), buf.size());
      if ((i + 1) % 10000 == 0)
        std::fprintf(stderr, "  %llu mutations...\n",
                     static_cast<unsigned long long>(i + 1));
    }
    std::remove("crash-candidate.bin");
    std::fprintf(stderr, "Survived %llu mutations.\n",
                 static_cast<unsigned long long>(mutate_iters));
  }
  return 0;
}
