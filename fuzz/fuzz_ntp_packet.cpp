// libFuzzer harness: NTP packet + mode-6 config-message parsing.
//
// decode_ntp must return or throw DecodeError; on success the 16-byte
// fixed header (LVM/stratum/poll/precision/root fields/refid) must
// round-trip byte-exactly through encode_ntp. Timestamp words are excluded
// from the byte comparison: the wire<->double conversion is documented as
// lossy below double precision, which is a representation property, not a
// parser bug. decode_config_response is noexcept-by-contract (it returns
// nullopt on malformed input), and a decoded response must round-trip
// byte-exactly through encode_config_response.
#include <cstdint>
#include <cstdlib>
#include <cstring>

#include "ntp/packet.h"

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size) {
  using namespace dnstime;
  (void)ntp::is_config_request({data, size});

  try {
    ntp::NtpPacket pkt = ntp::decode_ntp({data, size});
    Bytes wire = ntp::encode_ntp(pkt);
    if (wire.size() != 48) std::abort();
    if (std::memcmp(wire.data(), data, 16) != 0) std::abort();
    ntp::NtpPacket again = ntp::decode_ntp(wire);
    Bytes wire2 = ntp::encode_ntp(again);
    if (wire != wire2) std::abort();  // encoder not idempotent
  } catch (const DecodeError&) {
  }

  if (auto resp = ntp::decode_config_response({data, size})) {
    Bytes wire = ntp::encode_config_response(*resp);
    auto again = ntp::decode_config_response(wire);
    if (!again) std::abort();  // canonical encoding must decode
    if (ntp::encode_config_response(*again) != wire) std::abort();
  }
  return 0;
}
