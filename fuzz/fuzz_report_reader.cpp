// libFuzzer harness: campaign report JSON parser (campaign/diff).
//
// parse_report is the strict recursive-descent parser that loads baseline
// artifacts and diff inputs. Under fuzzing it must either return a report
// or throw ParseError — no other exception, no crash, no hang on crafted
// nesting. On success the emit/parse cycle must be a fixed point:
// to_json(parse(to_json(r))) == to_json(r), which is the byte-identity
// contract every golden-file test builds on.
#include <cstdint>
#include <cstdlib>
#include <string_view>

#include "campaign/diff/report_reader.h"

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size) {
  using namespace dnstime::campaign;
  std::string_view json(reinterpret_cast<const char*>(data), size);
  CampaignReport report;
  try {
    report = diff::parse_report(json, "<fuzz>");
  } catch (const diff::ParseError&) {
    return 0;
  }
  std::string first = report.to_json(true);
  CampaignReport reparsed = diff::parse_report(first, "<fuzz:reparse>");
  if (reparsed.to_json(true) != first) std::abort();  // emit not a fixed point
  std::string aggregates = report.to_json(false);
  (void)diff::parse_report(aggregates, "<fuzz:aggregates>");
  return 0;
}
