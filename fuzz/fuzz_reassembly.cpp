// libFuzzer harness: ReassemblyCache driven by a crafted fragment script.
//
// The input is a little op-stream (documented below) decoded into insert()
// and expire() calls — crafted overlaps, out-of-range offsets, duplicate
// offsets, MF toggles and endpoint-pair sprays all fall out of mutation.
// This is the component the paper's §III attack plants spoofed fragments
// into, and the exact code where the pre-PR5 out-of-bounds write lived.
//
// Script format, repeated until input is exhausted:
//   op byte with bit 7 set  -> expire(now += (op & 0x7f) seconds)
//   op byte with bit 7 clear -> insert a fragment:
//       [op][id_lo][off_hi][off_lo][len]([payload bytes...])
//     op bits 0..1: source address selector (spray across pairs)
//     op bit 2:     more-fragments flag
//     op bits 3..4: high bits 8..9 of the offset-units field
//     id_lo:        IPID low byte (IPID spray)
//     off:          fragment offset in 8-byte units (14-bit wire field)
//     len:          payload length; bytes beyond the input are zero-filled
//
// Invariants checked:
//   * a completed datagram's payload has the size declared by the first
//     MF=0 fragment accepted for it;
//   * pending_datagrams() never exceeds the number of inserts;
//   * expire() at +forever leaves the cache empty;
//   * counters are monotone and completed+expired+pending stay consistent;
//   * provenance: every fragment is stamped (op bit 5 marks it spoofed)
//     and a completed datagram's merged Origin must carry the reassembled
//     flag, a sequence number issued to that (src,id) key, and the
//     spoofed flag only if a spoofed part was ever inserted for the key.
#include <cstdint>
#include <cstdlib>
#include <map>
#include <set>
#include <vector>

#include "common/origin.h"
#include "net/reassembly.h"

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size) {
  using namespace dnstime;
  net::ReassemblyPolicy policy;
  policy.max_datagrams_per_pair = 8;  // small cap: overflow path gets cover
  net::ReassemblyCache cache(policy);

  sim::Time now;
  size_t pos = 0;
  u64 inserts = 0;

  // (src,id) -> max datagram end ever declared by an MF=0 fragment. The
  // cache's total_payload comes from one accepted MF=0 fragment, so a
  // completed datagram can never exceed this bound (tracking the max over
  // all attempts keeps the harness sound without mirroring the cache's
  // accept/reject decisions).
  std::map<std::pair<u32, u16>, std::size_t> declared;

  // Provenance bookkeeping: the stamps issued per (src,id) key. A merged
  // datagram's Origin is the dominant part's (spoofed wins), so its seq
  // must have been issued under that key and it can only be spoofed if a
  // spoofed part ever was.
  struct IssuedStamps {
    std::set<u32> seqs;
    bool any_spoofed = false;
  };
  std::map<std::pair<u32, u16>, IssuedStamps> issued;
  u32 next_seq = 0;

  while (pos < size) {
    u8 op = data[pos++];
    if (op & 0x80) {
      now = now + sim::Duration::seconds(op & 0x7f);
      cache.expire(now);
      continue;
    }
    if (pos + 4 > size) break;
    net::Ipv4Packet frag;
    frag.src = Ipv4Addr{0x0A000001u + (op & 0x03u)};
    frag.dst = Ipv4Addr{0xC0A80001u};
    frag.protocol = net::kProtoUdp;
    frag.id = data[pos];
    frag.more_fragments = (op & 0x04) != 0;
    frag.frag_offset_units = static_cast<u16>(
        ((u16{op} & 0x18u) << 5) | (u16{data[pos + 1]} << 8) | data[pos + 2]);
    frag.frag_offset_units &= 0x1FFF;  // 13-bit wire field
    u8 len = data[pos + 3];
    pos += 4;
    Bytes payload(len, 0);
    for (std::size_t i = 0; i < len && pos + i < size; ++i) {
      payload[i] = data[pos + i];
    }
    pos += std::min<std::size_t>(len, size - pos);
    frag.payload = PacketBuf{payload};

    auto key = std::make_pair(frag.src.value(), frag.id);
    Origin origin;
    origin.ts_ns = now.ns();
    origin.seq = ++next_seq;
    origin.module = OriginModule::kAttacker;
    origin.flags = (op & 0x20) != 0 ? Origin::kSpoofed : u8{0};
    frag.payload.set_origin(origin);
    IssuedStamps& stamps = issued[key];
    stamps.seqs.insert(origin.seq);
    stamps.any_spoofed = stamps.any_spoofed || origin.spoofed();
    inserts++;
    if (!frag.more_fragments) {
      std::size_t end = frag.frag_offset_bytes() + frag.payload.size();
      auto [it, fresh] = declared.emplace(key, end);
      if (!fresh && end > it->second) it->second = end;
    }
    auto done = cache.insert(frag, now);
    if (done) {
      auto it = declared.find(key);
      if (it == declared.end() || done->payload.size() > it->second) {
        std::abort();  // reassembled past every declared datagram end
      }
      declared.erase(it);

      const Origin& merged = done->payload.origin();
      auto sit = issued.find(key);
      if (sit == issued.end()) std::abort();  // completed with no inserts?
      if (!merged.reassembled()) std::abort();
      if (sit->second.seqs.count(merged.seq) == 0) {
        std::abort();  // merged stamp was never issued for this key
      }
      if (merged.spoofed() && !sit->second.any_spoofed) {
        std::abort();  // spoofed taint appeared out of thin air
      }
    }
    if (cache.pending_datagrams() > inserts) std::abort();
  }

  cache.expire(now + sim::Duration::hours(24 * 365));
  if (cache.pending_datagrams() != 0) std::abort();
  return 0;
}
