// libFuzzer harness: trial-journal record framing (campaign/store).
//
// The journal reader's tolerance contract says any byte damage inside a
// frame surfaces as DecodeError (treated like a CRC mismatch); anything
// else — crash, non-DecodeError exception, unbounded allocation from a
// crafted length field — is a finding. The first input byte selects which
// decoder runs (meta vs record), so one corpus covers both framings. On a
// successful decode the codec must be canonical: re-encoding the decoded
// value and decoding again reproduces identical bytes.
#include <cstdint>
#include <cstdlib>

#include "campaign/store/journal.h"

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size) {
  using namespace dnstime;
  using namespace dnstime::campaign::store;
  if (size == 0) return 0;
  std::span<const u8> body{data + 1, size - 1};

  if (data[0] & 1) {
    ByteReader r(body);
    DecodedRecord rec;
    try {
      rec = decode_record(r);
    } catch (const DecodeError&) {
      return 0;
    }
    ByteWriter w;
    encode_record(w, rec.name_hash, rec.result);
    Bytes first = std::move(w).take();
    ByteReader r2(first);
    DecodedRecord again = decode_record(r2);  // canonical bytes must decode
    ByteWriter w2;
    encode_record(w2, again.name_hash, again.result);
    if (std::move(w2).take() != first) std::abort();  // codec not canonical
  } else {
    ByteReader r(body);
    JournalMeta meta;
    try {
      meta = JournalMeta::decode(r);
    } catch (const DecodeError&) {
      return 0;
    }
    Bytes first = meta.encode();
    ByteReader r2(first);
    JournalMeta again = JournalMeta::decode(r2);
    if (again.encode() != first) std::abort();  // codec not canonical
    if (again.fingerprint() != meta.fingerprint()) std::abort();
  }
  return 0;
}
