// Seed-corpus generator: writes encoder-produced valid inputs for every
// fuzz harness into <outdir>/<harness>/seed-*.
//
// Seeds come from the repo's own encoders, so the fuzzers start from deep
// in the accept-path instead of rediscovering the wire formats byte by
// byte. The committed corpus under fuzz/corpus/ was produced by this tool
// (plus fuzz-found crashers named crash-*); rerun after changing an
// encoder:   ./fuzz_seed_corpus fuzz/corpus
#include <cmath>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "campaign/report.h"
#include "campaign/store/journal.h"
#include "dns/message.h"
#include "net/reassembly.h"
#include "ntp/packet.h"

namespace {

namespace fs = std::filesystem;
using namespace dnstime;

fs::path g_out;

void write_seed(const std::string& harness, const std::string& name,
                std::span<const u8> bytes) {
  fs::path dir = g_out / harness;
  fs::create_directories(dir);
  fs::path p = dir / ("seed-" + name);
  std::ofstream out(p, std::ios::binary);
  out.write(reinterpret_cast<const char*>(bytes.data()),
            static_cast<std::streamsize>(bytes.size()));
  std::printf("%s (%zu bytes)\n", p.string().c_str(), bytes.size());
}

void write_seed(const std::string& harness, const std::string& name,
                const std::string& text) {
  write_seed(harness, name,
             std::span{reinterpret_cast<const u8*>(text.data()), text.size()});
}

void dns_seeds() {
  using namespace dnstime::dns;
  DnsMessage query;
  query.id = 0x1234;
  query.questions.push_back({DnsName::from_string("0.pool.ntp.org"),
                             RrType::kA});
  write_seed("dns_message", "query", encode_dns(query));

  DnsMessage resp;
  resp.id = 0xBEEF;
  resp.qr = resp.aa = resp.ra = true;
  resp.questions.push_back({DnsName::from_string("0.pool.ntp.org"),
                            RrType::kA});
  for (u32 i = 0; i < 4; ++i) {
    resp.answers.push_back(make_a(DnsName::from_string("0.pool.ntp.org"),
                                  Ipv4Addr{0x0A000001u + i}, 150));
  }
  resp.authority.push_back(make_ns(DnsName::from_string("pool.ntp.org"),
                                   DnsName::from_string("ns1.ntp.org"), 3600));
  ResourceRecord cname;
  cname.name = DnsName::from_string("www.ntp.org");
  cname.type = RrType::kCname;
  cname.ttl = 300;
  cname.target = DnsName::from_string("ntp.org");
  resp.additional.push_back(cname);
  resp.additional.push_back(
      make_txt(DnsName::from_string("meta.ntp.org"), "padding padding", 60));
  ResourceRecord sig;
  sig.name = DnsName::from_string("pool.ntp.org");
  sig.type = RrType::kRrsig;
  sig.ttl = 3600;
  sig.covered = RrType::kA;
  sig.signature = sign_rrset(42, sig.name, RrType::kA, resp.answers);
  resp.additional.push_back(sig);
  write_seed("dns_message", "response", encode_dns(resp));

  DnsMessage nx;
  nx.id = 1;
  nx.qr = true;
  nx.rcode = Rcode::kNxDomain;
  write_seed("dns_message", "nxdomain", encode_dns(nx));
}

void ntp_seeds() {
  using namespace dnstime::ntp;
  NtpPacket client;
  client.mode = Mode::kClient;
  client.tx_time = kSimEpochNtpSeconds;
  write_seed("ntp_packet", "client", encode_ntp(client));

  NtpPacket server;
  server.mode = Mode::kServer;
  server.stratum = 2;
  server.refid = 0x0A000001;
  server.org_time = kSimEpochNtpSeconds;
  server.rx_time = kSimEpochNtpSeconds + 0.25;
  server.tx_time = kSimEpochNtpSeconds + 0.375;
  server.ref_time = kSimEpochNtpSeconds - 16.0;
  write_seed("ntp_packet", "server", encode_ntp(server));

  NtpPacket kod;
  kod.mode = Mode::kServer;
  kod.stratum = 0;
  kod.refid = kKodRate;
  write_seed("ntp_packet", "kod-rate", encode_ntp(kod));

  write_seed("ntp_packet", "config-request", encode_config_request());
  ConfigResponse resp;
  resp.upstream_addrs = {Ipv4Addr{0x0A000001}, Ipv4Addr{0x0A000002}};
  resp.configured_hostname = "0.debian.pool.ntp.org";
  write_seed("ntp_packet", "config-response", encode_config_response(resp));
}

void reassembly_seeds() {
  // Scripts in the fuzz_reassembly op format (see that harness's header).
  auto frag = [](std::vector<u8>& s, u8 op, u8 id, u16 off_units, u8 len) {
    s.push_back(op & 0x7f);
    s.push_back(id);
    s.push_back(static_cast<u8>(off_units >> 8));
    s.push_back(static_cast<u8>(off_units));
    s.push_back(len);
    for (u8 i = 0; i < len; ++i) s.push_back(static_cast<u8>(i * 7 + 1));
  };
  std::vector<u8> two;  // first (MF=1, 16B) + last (MF=0) fragment
  frag(two, 0x04, 9, 0, 16);
  frag(two, 0x00, 9, 2, 8);
  write_seed("reassembly", "two-frag-complete", two);

  std::vector<u8> overlap;  // spoofed 2nd fragment overlapping the genuine
  frag(overlap, 0x04, 7, 0, 24);
  frag(overlap, 0x04, 7, 1, 16);  // overlaps [8,24) with different bytes
  frag(overlap, 0x00, 7, 3, 8);
  write_seed("reassembly", "overlap", overlap);

  std::vector<u8> oor;  // crafted part starting past the datagram end
  frag(oor, 0x00, 5, 0, 8);     // whole datagram: 8 bytes, MF=0
  frag(oor, 0x04, 5, 100, 32);  // out-of-range spray part (dropped)
  write_seed("reassembly", "out-of-range", oor);

  std::vector<u8> spray;  // IPID spray against one pair, then expiry
  for (u8 id = 0; id < 12; ++id) frag(spray, 0x05, id, 64, 8);
  spray.push_back(0x80 | 31);  // +31 s
  spray.push_back(0x80 | 31);  // +31 s -> everything times out
  write_seed("reassembly", "spray-expire", spray);
}

void report_seeds() {
  using namespace dnstime::campaign;
  CampaignReport report;
  report.seed = 41;
  report.trials_per_scenario = 2;
  ScenarioAggregate agg;
  agg.name = "table2/ntpd-p1";
  agg.attack = "run-time";
  agg.trials = 2;
  agg.successes = 1;
  agg.success_rate = 0.5;
  agg.duration_mean_s = 1234.5;
  agg.duration_p50_s = 1234.5;
  agg.duration_p90_s = 1234.5;
  agg.shift_mean_s = -500.0;
  agg.metric_mean = std::nan("");  // null in JSON, the NaN round-trip image
  agg.fragments_total = 64;
  TrialResult ok;
  ok.trial = 0;
  ok.seed = 7;
  ok.success = true;
  ok.duration_s = 1234.5;
  ok.clock_shift_s = -500.0;
  ok.fragments_planted = 64;
  TrialResult failed;
  failed.trial = 1;
  failed.seed = 8;
  failed.duration_s = 21600.0;
  failed.error = "deadline \"exceeded\"\n";
  agg.results = {ok, failed};
  report.scenarios.push_back(agg);
  write_seed("report_reader", "full", report.to_json(true));
  write_seed("report_reader", "aggregates", report.to_json(false));
  report.scenarios.clear();
  write_seed("report_reader", "empty", report.to_json(true));
}

void journal_seeds() {
  using namespace dnstime::campaign;
  using namespace dnstime::campaign::store;
  JournalMeta meta;
  meta.campaign_seed = 41;
  meta.trials_per_scenario = 4;
  meta.scenarios = {{"table2/ntpd-p1", "run-time"},
                    {"table2/chrony", "run-time"},
                    {"boot-time/open-resolver", "boot-time"}};
  Bytes m = meta.encode();
  Bytes meta_input;
  meta_input.push_back(0);  // harness mode byte: even = meta decoder
  meta_input.insert(meta_input.end(), m.begin(), m.end());
  write_seed("journal_reader", "meta", meta_input);

  TrialResult r;
  r.trial = 3;
  r.seed = 0xDEADBEEF;
  r.success = true;
  r.duration_s = 901.25;
  r.clock_shift_s = -500.0;
  r.metric = std::nan("");
  r.fragments_planted = 64;
  r.replant_rounds = 2;
  r.error = "";
  ByteWriter w;
  encode_record(w, fnv1a("table2/ntpd-p1"), r);
  Bytes rec = std::move(w).take();
  Bytes rec_input;
  rec_input.push_back(1);  // odd = record decoder
  rec_input.insert(rec_input.end(), rec.begin(), rec.end());
  write_seed("journal_reader", "record", rec_input);

  TrialResult err = r;
  err.success = false;
  err.error = "trial threw: reassembly timeout";
  ByteWriter w2;
  encode_record(w2, fnv1a("boot-time/open-resolver"), err);
  Bytes rec2 = std::move(w2).take();
  Bytes rec2_input;
  rec2_input.push_back(1);
  rec2_input.insert(rec2_input.end(), rec2.begin(), rec2.end());
  write_seed("journal_reader", "record-error", rec2_input);
}

}  // namespace

int main(int argc, char** argv) {
  if (argc != 2) {
    std::fprintf(stderr, "usage: %s OUTDIR   (e.g. fuzz/corpus)\n", argv[0]);
    return 2;
  }
  g_out = argv[1];
  dns_seeds();
  ntp_seeds();
  reassembly_seeds();
  report_seeds();
  journal_seeds();
  return 0;
}
